"""The federation runtime facade.

:class:`FederationRuntime` is the one object the FSM query layer talks
to: it owns a transport, the concurrent executor (retries, timeouts,
circuit breakers), the extent cache and the metrics collector, and
exposes the scan API the evaluation paths need —

* :meth:`direct_extent` / :meth:`extent` / :meth:`value_set` for single
  scans (the Appendix B :class:`~repro.federation.evaluation.AgentSource`
  hot path);
* :meth:`scan_extents` for the fact-lifting fan-out: all component
  extents a global query needs, fetched concurrently;
* :meth:`invalidate` / :meth:`bump_generation` for cache control;
* :meth:`stats` for the observable autonomy / performance counters.

Three execution modes share this facade.  ``mode="threaded"`` (default)
fans scans across a thread pool; ``mode="async"`` multiplexes them as
coroutines on one event loop via
:class:`~repro.runtime.async_executor.AsyncFederationExecutor`, so
thousands of slow agents cost timers instead of threads;
``mode="multiprocess"`` ships shard scans to ``spawn``-ed worker
processes via
:class:`~repro.runtime.mp_executor.MultiprocessFederationExecutor`,
exchanging :class:`~repro.runtime.columnar.ColumnarExtent` payloads so
CPU-bound per-item work escapes the GIL.  All modes feed the same
:class:`~repro.runtime.metrics.RuntimeMetrics` and
:class:`~repro.runtime.cache.ExtentCache` (multiprocess granules are
decoded before they are cached, under unchanged keys), so ``--stats``
output and cache behaviour are identical across modes.

Failure policy: ``PARTIAL`` serves what survived (missing extents come
back empty) and records a warning per failure; ``ERROR`` raises
:class:`~repro.errors.PartialResultError`.

*cache_path* puts a
:class:`~repro.runtime.persistence.PersistentExtentStore` under the
extent cache: granules spill to the sqlite file on fill and are
restored on construction (counted in ``cache_restores``, timed under
the ``persistence`` phase), so a federation restarted with the same
path answers warm queries without one agent scan — while component
writes and generation bumps invalidate restored entries exactly as
they do live ones.

A :class:`~repro.runtime.sharding.ShardPlan` (or a bare shard count)
turns every scan into a scatter/merge: each logical request fans out as
one request per shard, per-shard results are cached on their own
granules, and the merge dedups by OID.  Partial shard failure follows
the same policy split — ``ERROR`` refuses, ``PARTIAL`` serves the
merged slice set and reports exactly the missing shard endpoints in
:attr:`RuntimeStats.missing_shards <repro.runtime.metrics.RuntimeStats>`.

With *plan* enabled (the default), the fan-out paths coalesce: every
granule bound for one endpoint rides a single batched round-trip, and
the results are re-keyed per granule before they reach the cache — so
cache keys, warm behaviour and the ``agent_scans`` histogram are
byte-identical to unplanned runs while ``round_trips`` drops.  The FSM
additionally hands :meth:`scan_extents` a pushdown hint and prunes the
pair list through the query planner (:mod:`repro.runtime.planner`).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import PartialResultError, RuntimeFederationError
from ..federation.agent import FSMAgent
from ..model.instances import ObjectInstance
from .async_executor import AsyncFederationExecutor, EventLoopThread
from .async_transport import (
    AsyncAgentTransport,
    AsyncInProcessTransport,
    AsyncTransportAdapter,
)
from .breaker import CircuitBreaker
from .cache import MISS, ExtentCache
from .executor import FederationExecutor, ScanOutcome
from .metrics import RuntimeMetrics, RuntimeStats
from .mp_executor import MultiprocessFederationExecutor, wrap_multiprocess
from .persistence import PersistentExtentStore
from .policy import FailurePolicy, RuntimePolicy
from .sharding import ShardPlan, ShardedOutcome, merge_shard_values
from .transport import AgentTransport, InProcessTransport, ScanHint, ScanRequest

#: accepted FederationRuntime execution modes
MODES = ("threaded", "async", "multiprocess")


class FederationRuntime:
    """Concurrent, cached, observable access to a federation's agents."""

    def __init__(
        self,
        agents: Optional[Mapping[str, FSMAgent]] = None,
        transport: Optional["AgentTransport | AsyncAgentTransport"] = None,
        policy: Optional[RuntimePolicy] = None,
        metrics: Optional[RuntimeMetrics] = None,
        cache: Optional[ExtentCache] = None,
        breaker: Optional[CircuitBreaker] = None,
        mode: str = "threaded",
        shard_plan: "ShardPlan | int | None" = None,
        cache_path: "str | os.PathLike[str] | None" = None,
        loop: Optional[EventLoopThread] = None,
        plan: bool = True,
        deltas: bool = True,
    ) -> None:
        if mode not in MODES:
            raise RuntimeFederationError(
                f"unknown runtime mode {mode!r}; choose from {MODES}"
            )
        self.mode = mode
        if transport is None:
            if agents is None:
                raise PartialResultError(
                    "FederationRuntime needs agents or an explicit transport"
                )
            transport = (
                AsyncInProcessTransport(agents)
                if mode == "async"
                else InProcessTransport(agents)
            )
        if mode == "async" and isinstance(transport, AgentTransport):
            transport = AsyncTransportAdapter(transport)
        if mode in ("threaded", "multiprocess") and isinstance(
            transport, AsyncAgentTransport
        ):
            raise RuntimeFederationError(
                f"async transports need mode='async' ({mode} executors "
                f"cannot await coroutines)"
            )
        self.transport = transport
        self.policy = policy or RuntimePolicy()
        self.metrics = metrics or RuntimeMetrics()
        if cache is None and cache_path is not None:
            # the persistent tier: granules spill to disk on put and are
            # reloaded here, so a restarted federation warms up scan-free
            cache = ExtentCache(
                store=PersistentExtentStore(cache_path), metrics=self.metrics
            )
            self.metrics.incr("cache_restores", cache.restored)
        # explicit None test: an empty ExtentCache has len() == 0 and is
        # falsy, so `cache or ExtentCache()` would drop a persistent one
        self.cache = cache if cache is not None else ExtentCache()
        self.breaker = breaker or CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_reset
        )
        self.executor: "FederationExecutor | AsyncFederationExecutor"
        if mode == "async":
            assert isinstance(transport, AsyncAgentTransport)
            # *loop* lets many runtimes (one per service tenant) multiplex
            # their scans on one shared event-loop thread; the loop's
            # owner closes it, not this runtime
            self.executor = AsyncFederationExecutor(
                transport, self.policy, self.metrics, self.breaker, runner=loop
            )
        elif mode == "multiprocess":
            assert isinstance(transport, AgentTransport)
            # splice the worker pool under any parent-side wrappers
            # (fault simulators keep observing every dispatch), then
            # decode columnar payloads at the executor boundary
            transport = wrap_multiprocess(
                transport, workers=self.policy.max_workers
            )
            self.transport = transport
            self.executor = MultiprocessFederationExecutor(
                transport, self.policy, self.metrics, self.breaker
            )
        else:
            assert isinstance(transport, AgentTransport)
            self.executor = FederationExecutor(
                transport, self.policy, self.metrics, self.breaker
            )
        #: scatter/merge plan; None means classic one-scan-per-extent
        self.shard_plan: Optional[ShardPlan] = ShardPlan.coerce(shard_plan)
        #: query planning: coalesce fan-outs into batched round-trips and
        #: let the FSM prune/push down; off reproduces pre-planner traffic
        self.plan_enabled = bool(plan)
        #: incremental invalidation: replay component delta feeds onto
        #: stale cache granules before each freshness check; off
        #: reproduces the full-rescan-on-any-write baseline
        self.deltas_enabled = bool(deltas)
        #: the most recent QueryPlan the FSM ran through this runtime
        self.last_plan: Optional[Any] = None
        #: warnings from the most recent degraded operation
        self.last_warnings: List[str] = []
        self._closed = False

    # ------------------------------------------------------------------
    # request construction
    # ------------------------------------------------------------------
    def request(
        self,
        schema_name: str,
        class_name: str,
        op: str = "direct_extent",
        attribute: Optional[str] = None,
        hint: Optional[ScanHint] = None,
    ) -> ScanRequest:
        agent = self.transport.agent_for_schema(schema_name)
        return ScanRequest(agent, schema_name, class_name, op, attribute, hint=hint)

    # ------------------------------------------------------------------
    # single scans
    # ------------------------------------------------------------------
    def direct_extent(
        self, schema_name: str, class_name: str
    ) -> List[ObjectInstance]:
        return self._fetch(self.request(schema_name, class_name, "direct_extent"), [])

    def extent(self, schema_name: str, class_name: str) -> List[ObjectInstance]:
        return self._fetch(self.request(schema_name, class_name, "extent"), [])

    def value_set(
        self, schema_name: str, class_name: str, attribute: str
    ) -> Set[Any]:
        return self._fetch(
            self.request(schema_name, class_name, "value_set", attribute), set()
        )

    def _fetch(self, request: ScanRequest, empty: Any) -> Any:
        """One scan through cache + executor, honouring the failure policy."""
        self.metrics.incr("requests")
        if self.shard_plan is not None:
            return self._fetch_sharded(request, empty)
        cached = self._cache_get(request)
        if cached is not MISS:
            return cached
        try:
            value = self.executor.run_one(request)
        except PartialResultError:
            raise
        except Exception as error:
            if self.policy.failure_policy is FailurePolicy.ERROR:
                raise
            warning = f"{request.describe()}: {error}"
            self.last_warnings.append(warning)
            self.metrics.incr("partial_results")
            return empty
        self._cache_put(request, value)
        return value

    def _fetch_sharded(self, request: ScanRequest, empty: Any) -> Any:
        """One logical scan scattered across the shard plan and merged."""
        plan = self.shard_plan
        assert plan is not None
        shard_requests = plan.split(request)
        preloaded: Dict[ScanRequest, Any] = {}
        for shard_request in shard_requests:
            cached = self._cache_get(shard_request)
            if cached is not MISS:
                preloaded[shard_request] = cached
        if len(preloaded) == len(shard_requests):
            return merge_shard_values(
                request.op, [preloaded[r] for r in shard_requests]
            )
        self.metrics.incr("sharded_scans")
        outcome = self.executor.run_sharded([request], plan, preloaded)
        self._cache_shard_results(outcome, preloaded)
        self._apply_sharded_failure_policy(outcome)
        return outcome.results.get(request, empty)

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def scan_extents(
        self,
        pairs: Iterable[Tuple[str, str]],
        op: str = "direct_extent",
        hint: Optional[ScanHint] = None,
    ) -> Dict[Tuple[str, str], List[ObjectInstance]]:
        """Concurrently fetch the extents of many ``(schema, class)`` pairs.

        Cached granules are served without touching their agents; only
        the misses fan out — with planning enabled, coalesced into one
        batched round-trip per endpoint (results are still cached per
        granule under their usual keys, so warm behaviour is unchanged).
        A *hint* rides on every request as the planner's advisory
        pushdown.  Failed scans are absent from the mapping under the
        ``PARTIAL`` policy (callers treat them as empty).
        """
        requests = [
            self.request(schema_name, class_name, op, hint=hint)
            for schema_name, class_name in dict.fromkeys(pairs)
        ]
        self.metrics.incr("requests", len(requests))
        if self.shard_plan is not None:
            return self._scan_extents_sharded(requests)
        extents: Dict[Tuple[str, str], List[ObjectInstance]] = {}
        to_fetch: List[ScanRequest] = []
        for request in requests:
            cached = self._cache_get(request)
            if cached is MISS:
                to_fetch.append(request)
            else:
                extents[(request.schema, request.class_name)] = cached
        if to_fetch:
            with self.metrics.timer("fan_out"):
                if self.plan_enabled:
                    outcome = self.executor.run_coalesced(to_fetch)
                else:
                    outcome = self.executor.run(to_fetch)
            self._apply_failure_policy(outcome)
            for request, value in outcome.results.items():
                self._cache_put(request, value)
                extents[(request.schema, request.class_name)] = value
        return extents

    def _scan_extents_sharded(
        self, requests: Sequence[ScanRequest]
    ) -> Dict[Tuple[str, str], List[ObjectInstance]]:
        """The sharded fan-out: scatter every logical miss, merge slices.

        Warm shard granules are merged locally; a logical request with
        any cold shard goes through the executor's scatter (cold shards
        only — the warm slices ride along as *preloaded*).  Under the
        ``PARTIAL`` policy a logical request missing some shards still
        appears in the mapping, carrying the slices that survived.
        """
        plan = self.shard_plan
        assert plan is not None
        extents: Dict[Tuple[str, str], List[ObjectInstance]] = {}
        preloaded: Dict[ScanRequest, Any] = {}
        to_fetch: List[ScanRequest] = []
        for request in requests:
            shard_requests = plan.split(request)
            warm: List[Any] = []
            for shard_request in shard_requests:
                cached = self._cache_get(shard_request)
                if cached is not MISS:
                    preloaded[shard_request] = cached
                    warm.append(cached)
            if len(warm) == len(shard_requests):
                extents[(request.schema, request.class_name)] = merge_shard_values(
                    request.op, warm
                )
            else:
                to_fetch.append(request)
        if to_fetch:
            self.metrics.incr("sharded_scans", len(to_fetch))
            with self.metrics.timer("fan_out"):
                outcome = self.executor.run_sharded(
                    to_fetch, plan, preloaded, coalesce=self.plan_enabled
                )
            self._cache_shard_results(outcome, preloaded)
            self._apply_sharded_failure_policy(outcome)
            for request, value in outcome.results.items():
                extents[(request.schema, request.class_name)] = value
        return extents

    def _cache_shard_results(
        self, outcome: ShardedOutcome, preloaded: Mapping[ScanRequest, Any]
    ) -> None:
        for shard_request, value in outcome.shard_results.items():
            if shard_request not in preloaded:
                self._cache_put(shard_request, value)

    def _apply_failure_policy(self, outcome: ScanOutcome) -> None:
        if not outcome.partial:
            return
        if self.policy.failure_policy is FailurePolicy.ERROR:
            raise PartialResultError(
                "; ".join(outcome.warnings()), failures=outcome.failures
            )
        self.last_warnings.extend(outcome.warnings())
        self.metrics.incr("partial_results", len(outcome.failures))

    def _apply_sharded_failure_policy(self, outcome: ShardedOutcome) -> None:
        if not outcome.partial:
            return
        if self.policy.failure_policy is FailurePolicy.ERROR:
            raise PartialResultError(
                "; ".join(outcome.warnings()), failures=outcome.failures
            )
        self.last_warnings.extend(outcome.warnings())
        self.metrics.incr("partial_results", len(outcome.missing))

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, request: ScanRequest) -> Any:
        if not self.policy.cache_enabled:
            return MISS
        current = self.transport.generation(request)
        if self.deltas_enabled and current is not None:
            self._sync_deltas(request, current)
        value = self.cache.get(request, current)
        self.metrics.incr("cache_hits" if value is not MISS else "cache_misses")
        return value

    def _sync_deltas(self, request: ScanRequest, current: int) -> None:
        """Replay the component's delta feed onto stale cached granules
        of this request's ``(agent, schema)`` before the freshness
        check, so a single-row write patches instead of forcing rescans.
        Un-patchable variants are individually evicted and accounted in
        ``fallback_invalidations`` — never a full generation bump."""
        outcome = self.cache.apply_deltas(
            request.agent,
            request.schema,
            current,
            lambda since: self.transport.changes(request, since),
        )
        if outcome.deltas_applied:
            self.metrics.incr("deltas_applied", outcome.deltas_applied)
        if outcome.granules_patched:
            self.metrics.incr("granules_patched", outcome.granules_patched)
        for description, _reason in outcome.fallbacks:
            self.metrics.record_fallback_invalidation(description)

    def _cache_put(self, request: ScanRequest, value: Any) -> None:
        if self.policy.cache_enabled:
            self.cache.put(request, value, self.transport.generation(request))

    def invalidate(
        self,
        agent: Optional[str] = None,
        schema: Optional[str] = None,
        class_name: Optional[str] = None,
        shard: Optional[Tuple[Any, ...]] = None,
    ) -> int:
        """Explicitly drop cached extents (see :meth:`ExtentCache.invalidate`)."""
        return self.cache.invalidate(agent, schema, class_name, shard)

    def bump_generation(self) -> int:
        """Invalidate the whole cache via its generation counter."""
        return self.cache.bump_generation()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> RuntimeStats:
        """A point-in-time snapshot; subtract two for per-query deltas."""
        return self.metrics.snapshot()

    def timer(self, phase: str):
        return self.metrics.timer(phase)

    def agent_access_counts(self) -> Dict[str, int]:
        """Scans that reached each agent (injected-fault attempts included)."""
        return dict(self.stats().agent_scans)

    def drain_warnings(self) -> List[str]:
        """Return and clear the accumulated degradation warnings."""
        warnings, self.last_warnings = self.last_warnings, []
        return warnings

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Release executor resources (the async mode's loop thread) and
        the cache's persistent store, when one is attached.

        Idempotent: every exit path (success, error, signal handler) may
        call it, and double closes are no-ops — the CLI and the service
        shutdown sequence both rely on that.
        """
        if self._closed:
            return
        self._closed = True
        closer = getattr(self.executor, "close", None)
        if closer is not None:
            closer()
        self.cache.close()
