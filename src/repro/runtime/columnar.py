"""Columnar extent encoding: O-term extents as tuples-of-arrays.

The multiprocess data plane moves §3 extent scans into worker
processes, so every scan result crosses a process boundary.  Pickling a
list of :class:`~repro.model.instances.ObjectInstance` objects is
dominated by per-object overhead — each instance carries its own OID
object, attribute dict and aggregation dict.  :class:`ColumnarExtent`
re-shapes one extent into parallel arrays:

* an interned **relation-coordinate table** — the distinct
  ``(agent, system, database, relation)`` 4-tuples of the extent's
  OIDs — plus two parallel arrays ``(coordinate index, tuple number)``
  standing in for the OID objects themselves;
* one column per **attribute name** over the union of the extent's
  attributes, and separately one column per **aggregation function**
  (the model keeps the two namespaces apart);
* per-cell **tags** for the non-primitive values the data mappings and
  FK resolution produce: OID references, multivalued ``frozenset``
  fills, nested instances and explicit NULLs vs. absent attributes.

The encoding is lossless — ``to_instances(from_instances(extent))``
reproduces the extent instance-for-instance, including ``None`` fills
for unmatched fuzzy triples and values produced by
``TripleMapping``/``LinearMapping`` — and cheap to pickle, because the
arrays hold almost entirely primitives.  :func:`merge_columnar` folds
shard slices at the array level (OID-dedup on the coordinate/number
arrays, no per-instance object churn), which is what
:func:`~repro.runtime.sharding.merge_shard_values` uses to reassemble a
sharded extent out of worker replies before a single instance object is
built.

Cell tagging relies on one model invariant: an instance attribute value
is never a plain ``tuple`` (:meth:`ObjectInstance.set_attribute
<repro.model.instances.ObjectInstance.set_attribute>` coerces every
non-string sequence to a ``frozenset``), so tuples are free to carry
the tag vocabulary and every untagged cell is stored verbatim.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.instances import ObjectInstance
from ..model.oids import OID

__all__ = ["ColumnarExtent", "merge_columnar"]

# cell tags (tuples cannot collide with stored values; see module doc)
_ABSENT = ("_",)  # attribute not present on this instance (≠ NULL)
_TAG_OID = "o"  # ("o", coordinate index, tuple number)
_TAG_SET = "f"  # ("f", (encoded element, ...))
_TAG_NESTED = "i"  # ("i", encoded nested instance)


def _encode_cell(value: Any, interner: Dict[Tuple[str, str, str, str], int],
                 coords: List[Tuple[str, str, str, str]]) -> Any:
    if isinstance(value, OID):
        return (_TAG_OID, _intern(value, interner, coords), value.number)
    if isinstance(value, frozenset):
        return (
            _TAG_SET,
            tuple(
                sorted(
                    (_encode_cell(element, interner, coords) for element in value),
                    key=repr,
                )
            ),
        )
    if isinstance(value, ObjectInstance):
        return (_TAG_NESTED, _encode_instance(value, interner, coords))
    return value


def _decode_cell(cell: Any, coords: Sequence[Tuple[str, str, str, str]]) -> Any:
    if type(cell) is not tuple:
        return cell
    tag = cell[0]
    if tag == _TAG_OID:
        return OID(*coords[cell[1]], cell[2])
    if tag == _TAG_SET:
        return frozenset(_decode_cell(element, coords) for element in cell[1])
    if tag == _TAG_NESTED:
        return _decode_instance(cell[1], coords)
    raise ValueError(f"unknown columnar cell tag {tag!r}")


def _intern(
    oid: OID,
    interner: Dict[Tuple[str, str, str, str], int],
    coords: List[Tuple[str, str, str, str]],
) -> int:
    coordinate = (oid.agent, oid.system, oid.database, oid.relation)
    index = interner.get(coordinate)
    if index is None:
        index = len(coords)
        interner[coordinate] = index
        coords.append(coordinate)
    return index


def _encode_instance(
    instance: ObjectInstance,
    interner: Dict[Tuple[str, str, str, str], int],
    coords: List[Tuple[str, str, str, str]],
) -> Tuple[Any, ...]:
    """A nested instance cell: rare, so it keeps the row-wise shape."""
    return (
        instance.class_name,
        _intern(instance.oid, interner, coords),
        instance.oid.number,
        tuple(
            (name, _encode_cell(value, interner, coords))
            for name, value in instance.attributes.items()
        ),
        tuple(
            (name, _encode_cell(value, interner, coords))
            for name, value in instance.aggregations.items()
        ),
    )


def _decode_instance(
    payload: Tuple[Any, ...], coords: Sequence[Tuple[str, str, str, str]]
) -> ObjectInstance:
    class_name, coordinate_index, number, attributes, aggregations = payload
    return _build_instance(
        OID(*coords[coordinate_index], number),
        class_name,
        {name: _decode_cell(cell, coords) for name, cell in attributes},
        {name: _decode_cell(cell, coords) for name, cell in aggregations},
    )


def _build_instance(
    oid: OID,
    class_name: str,
    attributes: Dict[str, Any],
    aggregations: Dict[str, Any],
) -> ObjectInstance:
    # decoded values are already in stored form (frozensets stay
    # frozensets, NULLs stay None), so the constructor's coercion and
    # validation passes are pure overhead on the decode hot path
    instance = ObjectInstance.__new__(ObjectInstance)
    object.__setattr__(instance, "oid", oid)
    object.__setattr__(instance, "class_name", class_name)
    object.__setattr__(instance, "_attributes", attributes)
    object.__setattr__(instance, "_aggregations", aggregations)
    return instance


class ColumnarExtent:
    """One extent as parallel arrays — the multiprocess wire format."""

    __slots__ = (
        "coords",
        "oid_coords",
        "oid_numbers",
        "class_names",
        "attribute_names",
        "attribute_columns",
        "aggregation_names",
        "aggregation_columns",
        "_decoded",
    )

    def __init__(
        self,
        coords: Tuple[Tuple[str, str, str, str], ...],
        oid_coords: Tuple[int, ...],
        oid_numbers: Tuple[int, ...],
        class_names: Tuple[str, ...],
        attribute_names: Tuple[str, ...],
        attribute_columns: Tuple[Tuple[Any, ...], ...],
        aggregation_names: Tuple[str, ...],
        aggregation_columns: Tuple[Tuple[Any, ...], ...],
    ) -> None:
        self.coords = coords
        self.oid_coords = oid_coords
        self.oid_numbers = oid_numbers
        self.class_names = class_names
        self.attribute_names = attribute_names
        self.attribute_columns = attribute_columns
        self.aggregation_names = aggregation_names
        self.aggregation_columns = aggregation_columns
        self._decoded: Optional[List[ObjectInstance]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_instances(cls, instances: Iterable[ObjectInstance]) -> "ColumnarExtent":
        """Encode an instance list into the tuples-of-arrays form."""
        interner: Dict[Tuple[str, str, str, str], int] = {}
        coords: List[Tuple[str, str, str, str]] = []
        oid_coords: List[int] = []
        oid_numbers: List[int] = []
        class_names: List[str] = []
        attribute_columns: Dict[str, List[Any]] = {}
        aggregation_columns: Dict[str, List[Any]] = {}
        count = 0
        for instance in instances:
            oid_coords.append(_intern(instance.oid, interner, coords))
            oid_numbers.append(instance.oid.number)
            class_names.append(instance.class_name)
            for name, value in instance.attributes.items():
                column = attribute_columns.get(name)
                if column is None:
                    column = attribute_columns[name] = [_ABSENT] * count
                column.append(_encode_cell(value, interner, coords))
            for name, value in instance.aggregations.items():
                column = aggregation_columns.get(name)
                if column is None:
                    column = aggregation_columns[name] = [_ABSENT] * count
                column.append(_encode_cell(value, interner, coords))
            count += 1
            for column in attribute_columns.values():
                if len(column) < count:
                    column.append(_ABSENT)
            for column in aggregation_columns.values():
                if len(column) < count:
                    column.append(_ABSENT)
        return cls(
            tuple(coords),
            tuple(oid_coords),
            tuple(oid_numbers),
            tuple(class_names),
            tuple(attribute_columns),
            tuple(tuple(column) for column in attribute_columns.values()),
            tuple(aggregation_columns),
            tuple(tuple(column) for column in aggregation_columns.values()),
        )

    def to_instances(self) -> List[ObjectInstance]:
        """Decode back to an instance list (memoized; returns a copy)."""
        if self._decoded is None:
            coords = self.coords
            decoded: List[ObjectInstance] = []
            for row in range(len(self.oid_numbers)):
                attributes: Dict[str, Any] = {}
                for name, column in zip(self.attribute_names, self.attribute_columns):
                    cell = column[row]
                    if cell != _ABSENT:
                        attributes[name] = _decode_cell(cell, coords)
                aggregations: Dict[str, Any] = {}
                for name, column in zip(
                    self.aggregation_names, self.aggregation_columns
                ):
                    cell = column[row]
                    if cell != _ABSENT:
                        aggregations[name] = _decode_cell(cell, coords)
                decoded.append(
                    _build_instance(
                        OID(*coords[self.oid_coords[row]], self.oid_numbers[row]),
                        self.class_names[row],
                        attributes,
                        aggregations,
                    )
                )
            self._decoded = decoded
        return list(self._decoded)

    # ------------------------------------------------------------------
    def oid_keys(self) -> Iterable[Tuple[Tuple[str, str, str, str], int]]:
        """The extent's OIDs as hashable keys, without building OIDs."""
        coords = self.coords
        for coordinate_index, number in zip(self.oid_coords, self.oid_numbers):
            yield coords[coordinate_index], number

    @property
    def item_count(self) -> int:
        """Rows carried — what per-item transfer pricing charges for."""
        return len(self.oid_numbers)

    def __len__(self) -> int:
        return len(self.oid_numbers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarExtent):
            return NotImplemented
        return self.to_instances() == other.to_instances()

    def __repr__(self) -> str:
        return (
            f"ColumnarExtent({len(self)} rows, {len(self.coords)} relations, "
            f"{len(self.attribute_names)} attribute columns)"
        )

    # memoized decode state must not cross a pickle boundary
    def __getstate__(self) -> Tuple[Any, ...]:
        return (
            self.coords,
            self.oid_coords,
            self.oid_numbers,
            self.class_names,
            self.attribute_names,
            self.attribute_columns,
            self.aggregation_names,
            self.aggregation_columns,
        )

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self.__init__(*state)  # type: ignore[misc]


def _remap_cell(cell: Any, remap: Sequence[int]) -> Any:
    """Rewrite slice-local coordinate indexes to the merged table."""
    if type(cell) is not tuple:
        return cell
    tag = cell[0]
    if tag == _TAG_OID:
        return (_TAG_OID, remap[cell[1]], cell[2])
    if tag == _TAG_SET:
        return (_TAG_SET, tuple(_remap_cell(element, remap) for element in cell[1]))
    if tag == _TAG_NESTED:
        class_name, coordinate_index, number, attributes, aggregations = cell[1]
        return (
            _TAG_NESTED,
            (
                class_name,
                remap[coordinate_index],
                number,
                tuple((n, _remap_cell(c, remap)) for n, c in attributes),
                tuple((n, _remap_cell(c, remap)) for n, c in aggregations),
            ),
        )
    return cell  # _ABSENT


def merge_columnar(slices: Sequence[ColumnarExtent]) -> ColumnarExtent:
    """Fold shard slices into one extent, deduping OIDs on the arrays.

    A shard plan can hand the same object to more than one granule
    (range plans overlap at the band edges), so the fold keeps the
    first occurrence of each ``(coordinate, number)`` key — matching
    the per-instance merge order — while touching only the arrays:
    no :class:`~repro.model.instances.ObjectInstance` is constructed.
    """
    interner: Dict[Tuple[str, str, str, str], int] = {}
    coords: List[Tuple[str, str, str, str]] = []
    oid_coords: List[int] = []
    oid_numbers: List[int] = []
    class_names: List[str] = []
    attribute_columns: Dict[str, List[Any]] = {}
    aggregation_columns: Dict[str, List[Any]] = {}
    seen: set = set()
    count = 0
    for piece in slices:
        remap: List[int] = []
        for coordinate in piece.coords:
            index = interner.get(coordinate)
            if index is None:
                index = len(coords)
                interner[coordinate] = index
                coords.append(coordinate)
            remap.append(index)
        keep: List[int] = []
        for row, (local_index, number) in enumerate(
            zip(piece.oid_coords, piece.oid_numbers)
        ):
            key = (remap[local_index], number)
            if key in seen:
                continue
            seen.add(key)
            keep.append(row)
            oid_coords.append(remap[local_index])
            oid_numbers.append(number)
            class_names.append(piece.class_names[row])
        if not keep:
            continue
        for names, source_columns, merged in (
            (piece.attribute_names, piece.attribute_columns, attribute_columns),
            (piece.aggregation_names, piece.aggregation_columns, aggregation_columns),
        ):
            for name, column in zip(names, source_columns):
                target = merged.get(name)
                if target is None:
                    target = merged[name] = [_ABSENT] * count
                target.extend(_remap_cell(column[row], remap) for row in keep)
        count += len(keep)
        for merged in (attribute_columns, aggregation_columns):
            for column in merged.values():
                if len(column) < count:
                    column.extend([_ABSENT] * (count - len(column)))
    return ColumnarExtent(
        tuple(coords),
        tuple(oid_coords),
        tuple(oid_numbers),
        tuple(class_names),
        tuple(attribute_columns),
        tuple(tuple(column) for column in attribute_columns.values()),
        tuple(aggregation_columns),
        tuple(tuple(column) for column in aggregation_columns.values()),
    )
