"""Federation architecture (§3, Appendix B of the paper).

FSM-agents hosting component databases (native object stores or
relational databases wrapped through the §3 transformation), data
mappings ``F^A_{DB_i,B}``, same-object identity resolution, fact lifting,
the FSM coordination layer with both Fig 2 multi-schema strategies, and
federated query evaluation via the bottom-up engine or the faithful
Appendix B top-down evaluator.
"""

from .agent import FSMAgent
from .decomposition import LocalSubQuery, QueryPlan, decompose_query, explain
from .evaluation import (
    AgentSource,
    FederationContext,
    FederationEngine,
    evaluate_value_set,
    appendix_b_program,
    inheritance_rules,
    lift_facts,
)
from .fsm import FSM
from .mappings import (
    DataMapping,
    DefaultMapping,
    FunctionMapping,
    MappingRegistry,
    SameObjectSpec,
    TripleMapping,
    same_object_facts,
)
from .query import FederatedQuery
from .relational import Column, ForeignKey, Relation, RelationalDatabase
from .transform import materialize_view, transform_schema

__all__ = [
    "AgentSource",
    "Column",
    "DataMapping",
    "DefaultMapping",
    "FSM",
    "FSMAgent",
    "FederatedQuery",
    "FederationContext",
    "FederationEngine",
    "evaluate_value_set",
    "LocalSubQuery",
    "QueryPlan",
    "decompose_query",
    "explain",
    "ForeignKey",
    "FunctionMapping",
    "MappingRegistry",
    "Relation",
    "RelationalDatabase",
    "SameObjectSpec",
    "TripleMapping",
    "appendix_b_program",
    "inheritance_rules",
    "lift_facts",
    "materialize_view",
    "same_object_facts",
    "transform_schema",
]
