"""The FSM layer: registration, integration strategies, global queries (§3).

The Federated System Manager "is responsible for merging potentially
conflicting local databases and defining global schemas" with
"centralized management".  :class:`FSM` is that layer:

* agents register; their hosted schemas become integration inputs;
* assertion sets (optionally in the DSL) are declared per schema pair;
* :meth:`integrate` runs the §6 algorithm on two schemas;
  :meth:`integrate_all` folds more than two using either Fig 2 strategy:
  ``accumulation`` (2(a): fold each next schema into the running result)
  or ``pairwise`` (2(b): integrate pairs, then pairs of results);
* cross-round assertions are *lifted*: an assertion ``S1.A θ S3.C``
  becomes ``IS1.IS(A) θ S3.C`` against the intermediate schema, with
  attribute paths renamed through the recorded provenance;
* :meth:`engine` / :meth:`query` evaluate global queries bottom-up;
  :meth:`appendix_b` builds the faithful top-down evaluator;
* :meth:`use_runtime` attaches a :class:`~repro.runtime.FederationRuntime`
  so both evaluation paths fan agent scans out concurrently, retry and
  circuit-break failing agents, serve repeats from the extent cache, and
  expose per-query :class:`~repro.runtime.RuntimeStats`
  (:attr:`last_query_stats`).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.async_executor import EventLoopThread
    from ..runtime.policy import RuntimePolicy
    from ..runtime.runtime import FederationRuntime
    from ..runtime.metrics import RuntimeStats
    from ..runtime.sharding import ShardPlan

from ..assertions.aggregation_assertions import AggregationCorrespondence
from ..assertions.assertion_set import AssertionSet
from ..assertions.attribute_assertions import AttributeCorrespondence
from ..assertions.class_assertions import ClassAssertion
from ..assertions.parser import parse as parse_assertions
from ..assertions.paths import Path
from ..assertions.value_assertions import ValueCorrespondence
from ..errors import QueryError, RegistrationError
from ..integration.naive import naive_schema_integration
from ..integration.naming import NamePolicy
from ..integration.optimized import schema_integration
from ..integration.result import IntegratedSchema
from ..integration.stats import IntegrationStats
from ..logic.labelled import LabelledProgram
from ..model.schema import Schema
from ..model.store import ComponentStore
from .agent import FSMAgent
from .evaluation import FederationEngine, appendix_b_program
from .mappings import MappingRegistry, SameObjectSpec
from .query import FederatedQuery

_ALGORITHMS = {
    "optimized": schema_integration,
    "naive": naive_schema_integration,
}


class FSM:
    """The Federated System Manager."""

    def __init__(self, name: str = "FSM", policy: Optional[NamePolicy] = None) -> None:
        self.name = name
        self.policy = policy
        self._agents: Dict[str, FSMAgent] = {}
        self._schema_host: Dict[str, str] = {}  # schema name -> agent name
        self._assertion_sets: Dict[Tuple[str, str], AssertionSet] = {}
        self.mappings = MappingRegistry()
        self.same_specs: List[SameObjectSpec] = []
        self.integrated: Optional[IntegratedSchema] = None
        self.last_stats: Optional[IntegrationStats] = None
        self.runtime: Optional["FederationRuntime"] = None
        self.last_query_stats: Optional["RuntimeStats"] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_agent(self, agent: FSMAgent) -> FSMAgent:
        """Register an FSM-agent and all schemas it hosts."""
        if agent.name in self._agents:
            raise RegistrationError(f"agent {agent.name!r} already registered")
        self._agents[agent.name] = agent
        for schema_name in agent.schema_names():
            if schema_name in self._schema_host:
                raise RegistrationError(
                    f"schema {schema_name!r} is already hosted by "
                    f"{self._schema_host[schema_name]!r}"
                )
            self._schema_host[schema_name] = agent.name
        return agent

    def agent(self, name: str) -> FSMAgent:
        try:
            return self._agents[name]
        except KeyError:
            raise RegistrationError(f"no agent {name!r} registered") from None

    def schema(self, schema_name: str) -> Schema:
        return self._host_of(schema_name).export_schema(schema_name)

    def schema_names(self) -> Tuple[str, ...]:
        return tuple(self._schema_host)

    def database(self, schema_name: str) -> ComponentStore:
        return self._host_of(schema_name).database(schema_name)

    def databases(self) -> Dict[str, ComponentStore]:
        return {name: self.database(name) for name in self._schema_host}

    def _host_of(self, schema_name: str) -> FSMAgent:
        try:
            return self._agents[self._schema_host[schema_name]]
        except KeyError:
            raise RegistrationError(
                f"no registered agent hosts schema {schema_name!r}"
            ) from None

    # ------------------------------------------------------------------
    # assertions and mappings
    # ------------------------------------------------------------------
    def declare(
        self, assertions: Union[str, Iterable[ClassAssertion]], validate: bool = True
    ) -> List[ClassAssertion]:
        """Declare assertions (DSL text or objects); grouped per pair."""
        parsed = (
            parse_assertions(assertions)
            if isinstance(assertions, str)
            else list(assertions)
        )
        for assertion in parsed:
            key = self._pair_key(assertion.left_schema, assertion.right_schema)
            assertion_set = self._assertion_sets.get(key)
            if assertion_set is None:
                assertion_set = AssertionSet(*key)
                self._assertion_sets[key] = assertion_set
            assertion_set.add(assertion)
            if validate:
                left = self.schema(assertion.left_schema)
                right = self.schema(assertion.right_schema)
                assertion.validate(left, right)
        return parsed

    def assertions_between(self, a: str, b: str) -> AssertionSet:
        key = self._pair_key(a, b)
        assertion_set = self._assertion_sets.get(key)
        if assertion_set is None:
            assertion_set = AssertionSet(*key)
            self._assertion_sets[key] = assertion_set
        return assertion_set

    def _pair_key(self, a: str, b: str) -> Tuple[str, str]:
        known = list(self._schema_host)
        if a in known and b in known:
            return (a, b) if known.index(a) < known.index(b) else (b, a)
        return (a, b) if a <= b else (b, a)

    def add_same_object(self, spec: SameObjectSpec) -> SameObjectSpec:
        self.same_specs.append(spec)
        return spec

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def integrate(
        self, left_name: str, right_name: str, algorithm: str = "optimized"
    ) -> IntegratedSchema:
        """Integrate two registered schemas; stores and returns the result."""
        try:
            run = _ALGORITHMS[algorithm]
        except KeyError:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{sorted(_ALGORITHMS)}"
            ) from None
        left = self.schema(left_name)
        right = self.schema(right_name)
        key = self._pair_key(left_name, right_name)
        assertion_set = self._assertion_sets.get(key)
        if assertion_set is None:
            assertion_set = AssertionSet(*key)
        if assertion_set.left_name != left.name:
            left, right = right, left
        result, stats = run(left, right, assertion_set, self.policy)
        self.integrated = result
        self.last_stats = stats
        return result

    def integrate_all(
        self,
        order: Optional[Sequence[str]] = None,
        strategy: str = "accumulation",
        algorithm: str = "optimized",
    ) -> IntegratedSchema:
        """Integrate every registered schema (Fig 2 strategies).

        ``accumulation`` folds schemas left to right (Fig 2(a));
        ``pairwise`` integrates adjacent pairs, then pairs of results
        (Fig 2(b)).  Cross-round assertions are lifted through the
        intermediate schemas' provenance.
        """
        names = list(order or self._schema_host)
        if not names:
            raise RegistrationError("no schemas registered")
        for name in names:
            if name not in self._schema_host:
                raise RegistrationError(f"schema {name!r} is not registered")
        if len(names) == 1:
            raise RegistrationError("integration needs at least two schemas")

        run = _ALGORITHMS[algorithm]
        items: List[_Item] = [_Item(self.schema(name), {name}) for name in names]
        if strategy == "accumulation":
            current = items[0]
            for nxt in items[1:]:
                current = self._merge_items(current, nxt, run)
            final = current
        elif strategy == "pairwise":
            while len(items) > 1:
                merged: List[_Item] = []
                for index in range(0, len(items) - 1, 2):
                    merged.append(
                        self._merge_items(items[index], items[index + 1], run)
                    )
                if len(items) % 2:
                    merged.append(items[-1])
                items = merged
            final = items[0]
        else:
            raise QueryError(
                f"unknown strategy {strategy!r}; choose accumulation or pairwise"
            )
        assert final.result is not None
        self.integrated = final.result
        return final.result

    def _merge_items(self, left: "_Item", right: "_Item", run) -> "_Item":
        assertion_set = self._lift_assertions(left, right)
        result, stats = run(left.schema, right.schema, assertion_set, self.policy)
        self.last_stats = stats
        _flatten_origins(result, left.result, right.result)
        _carry_rules(result, left.result, right.result)
        merged = _Item(result.to_model_schema(), left.originals | right.originals)
        merged.result = result
        return merged

    def _lift_assertions(self, left: "_Item", right: "_Item") -> AssertionSet:
        """Build the assertion set between two (possibly intermediate)
        schemas by lifting the declared local-pair assertions."""
        assertion_set = AssertionSet(left.schema.name, right.schema.name)
        for left_original in left.originals:
            for right_original in right.originals:
                key = self._pair_key(left_original, right_original)
                declared = self._assertion_sets.get(key)
                if declared is None:
                    continue
                for assertion in declared:
                    lifted = _lift_assertion(assertion, left, right)
                    if lifted is not None:
                        assertion_set.add_if_new(lifted)
        return assertion_set

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def use_runtime(
        self,
        policy: Optional["RuntimePolicy"] = None,
        runtime: Optional["FederationRuntime"] = None,
        mode: str = "threaded",
        shard_plan: "ShardPlan | int | None" = None,
        cache_path: Optional[str] = None,
        loop: Optional["EventLoopThread"] = None,
        plan: bool = True,
        deltas: bool = True,
    ) -> "FederationRuntime":
        """Attach a federation runtime to both evaluation paths.

        Either pass a prebuilt *runtime* (e.g. one whose transport
        simulates network faults), or a *policy* and the FSM builds an
        in-process runtime over its live agent registry (agents
        registered later are picked up automatically).  *mode* selects
        the execution engine for the built runtime: ``"threaded"``
        (thread-pool fan-out), ``"async"`` (one event loop multiplexes
        every in-flight scan) or ``"multiprocess"`` (shard scans run in
        ``spawn``-ed worker processes exchanging columnar extents, so
        CPU-bound per-item work escapes the GIL).  *shard_plan* — a
        :class:`~repro.runtime.sharding.ShardPlan` or a bare shard
        count — makes every extent scan a scatter/merge across N shard
        endpoints per agent.  *cache_path* spills the extent cache to a
        sqlite file and restores it on attach, so a restarted federation
        answers warm queries without re-scanning its components.
        *loop* (async mode) is a shared
        :class:`~repro.runtime.async_executor.EventLoopThread`: many
        FSMs — the federation service's tenants — multiplex their scans
        on one loop thread, and the loop's owner closes it.  *plan*
        (default on) runs every query through the federation query
        planner — assertion-graph pruning, per-endpoint scan
        coalescing, pushdown hints; ``plan=False`` reproduces the
        pre-planner one-round-trip-per-granule traffic.  *deltas*
        (default on) replays component delta feeds onto stale cached
        extents — single-row writes patch granules in place instead of
        forcing full rescans; ``deltas=False`` reproduces the
        rescan-on-any-write baseline.
        """
        if runtime is None:
            from ..runtime.async_transport import AsyncInProcessTransport
            from ..runtime.runtime import FederationRuntime
            from ..runtime.transport import InProcessTransport

            transport = (
                AsyncInProcessTransport(self._agents, self._schema_host)
                if mode == "async"
                else InProcessTransport(self._agents, self._schema_host)
            )
            runtime = FederationRuntime(
                transport=transport, policy=policy, mode=mode,
                shard_plan=shard_plan, cache_path=cache_path, loop=loop,
                plan=plan, deltas=deltas,
            )
        self.runtime = runtime
        return runtime

    def detach_runtime(self) -> None:
        """Return to the seed's direct, sequential agent access."""
        self.runtime = None

    def runtime_stats(self) -> Optional["RuntimeStats"]:
        """Cumulative runtime counters, or None without a runtime."""
        return self.runtime.stats() if self.runtime is not None else None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def engine(self, plan: Optional[Any] = None) -> FederationEngine:
        """A bottom-up federated engine over the last integration.

        *plan* — a :class:`~repro.runtime.planner.QueryPlan` — restricts
        fact lifting to the classes that can contribute to one query and
        threads the pushdown hint into the prefetch fan-out.
        """
        if self.integrated is None:
            raise QueryError("integrate schemas before querying")
        return FederationEngine(
            self.integrated,
            self.databases(),
            self.mappings,
            self.same_specs,
            runtime=self.runtime,
            plan=plan,
        )

    def plan_query(self, query: Union[str, FederatedQuery]) -> Optional[Any]:
        """Plan *query* through the runtime's planner, or None when the
        runtime is absent, planning is disabled, or nothing is integrated.

        The plan lands on ``runtime.last_plan`` and ticks the
        ``planned_queries`` / ``pruned_classes`` counters.
        """
        runtime = self.runtime
        if (
            runtime is None
            or not getattr(runtime, "plan_enabled", False)
            or self.integrated is None
        ):
            return None
        from ..runtime.planner import plan_query as build_plan

        if isinstance(query, str):
            query = FederatedQuery.parse(query)
        plan = build_plan(self.integrated, query, schemas=set(self._schema_host))
        runtime.last_plan = plan
        runtime.metrics.incr("planned_queries")
        if plan.pruned:
            runtime.metrics.incr("pruned_classes", len(plan.pruned))
        return plan

    def query(self, query: Union[str, FederatedQuery]) -> List[Dict[str, Any]]:
        """Run a federated query (textual form accepted).

        With a runtime attached, the per-query counter/timer delta lands
        in :attr:`last_query_stats` — the autonomy property (how many
        scans each agent served for *this* query) made observable.
        When the runtime has planning enabled, the query goes through
        :meth:`plan_query` first: pruned classes are never scanned or
        lifted, the remaining granules coalesce per endpoint, and the
        projection/predicate hint rides along.
        """
        if isinstance(query, str):
            query = FederatedQuery.parse(query)
        if self.runtime is None:
            return query.run(self.engine())
        plan = self.plan_query(query)
        before = self.runtime.stats()
        with self.runtime.timer("query"):
            rows = query.run(self.engine(plan=plan))
        self.last_query_stats = self.runtime.stats() - before
        return rows

    def appendix_b(
        self, prefetch: Union[str, FederatedQuery, None] = None
    ) -> LabelledProgram:
        """The faithful Appendix B top-down evaluator.

        *prefetch* — the query about to run — lets the planner warm the
        extent cache in one coalesced fan-out over exactly the class
        extensions that can contribute, so the program's per-predicate
        fetches become cache hits instead of one round-trip each.  The
        evaluator itself is unchanged; autonomy (one concept extension
        per fetch) is preserved at the source layer.
        """
        if self.integrated is None:
            raise QueryError("integrate schemas before querying")
        agents = {
            schema_name: self._host_of(schema_name)
            for schema_name in self._schema_host
        }
        if prefetch is not None and self.runtime is not None:
            plan = self.plan_query(prefetch)
            if plan is not None and plan.pairs:
                # AgentSource fetches full extents (op="extent"); warm
                # those granules so its per-predicate pulls hit the cache
                self.runtime.scan_extents(plan.pairs, op="extent", hint=plan.hint)
        return appendix_b_program(
            self.integrated,
            agents,
            self.mappings,
            self.same_specs,
            self.databases(),
            runtime=self.runtime,
        )


class _Item:
    """An integration operand: a schema plus the original schemas in it.

    After every merge, the result's provenance is *flattened* so its
    ``IS`` map and member origins reference original schemas directly;
    lifting a path therefore takes a single :func:`_lift_path` step.
    """

    def __init__(self, schema: Schema, originals: "set[str]") -> None:
        self.schema = schema
        self.originals = set(originals)
        self.result: Optional[IntegratedSchema] = None


def _flatten_origins(
    result: IntegratedSchema,
    left: Optional[IntegratedSchema],
    right: Optional[IntegratedSchema],
) -> None:
    """Rewrite *result*'s provenance through its (intermediate) operands.

    An origin ``(IS1, person)`` where ``IS1`` is an operand result is
    replaced by that operand class's own (already flattened) origins, so
    after this pass every origin references an original schema.  Classes
    left with no origins are rule-defined, hence virtual.
    """
    operands = {op.name: op for op in (left, right) if op is not None}
    if not operands:
        return

    def flatten_class(origins):
        flat = []
        for schema_name, class_name in origins:
            operand = operands.get(schema_name)
            if operand is None:
                flat.append((schema_name, class_name))
                continue
            inner = operand.cls(class_name)
            flat.extend(inner.origins)
        return tuple(dict.fromkeys(flat))

    def flatten_member(origins):
        flat = []
        for schema_name, class_name, member in origins:
            operand = operands.get(schema_name)
            if operand is None:
                flat.append((schema_name, class_name, member))
                continue
            inner = operand.cls(class_name)
            inner_member = inner.attributes.get(member) or inner.aggregations.get(member)
            if inner_member is None:
                continue
            flat.extend(inner_member.origins)
        return tuple(dict.fromkeys(flat))

    for integrated_class in result:
        was_concrete = bool(integrated_class.origins)
        integrated_class.origins = flatten_class(integrated_class.origins)
        if was_concrete and not integrated_class.origins:
            integrated_class.virtual = True
        for attribute in integrated_class.attributes.values():
            attribute.origins = flatten_member(attribute.origins)
        for aggregation in integrated_class.aggregations.values():
            aggregation.origins = flatten_member(aggregation.origins)
        for schema_name, class_name in integrated_class.origins:
            result.map_origin(schema_name, class_name, integrated_class.name)


def _carry_rules(
    result: IntegratedSchema,
    left: Optional[IntegratedSchema],
    right: Optional[IntegratedSchema],
) -> None:
    """Re-home the operands' generated rules into the merged result.

    Rule O-terms reference operand-level class names; each is renamed to
    its image in *result* (operand classes are always placed, so the
    image exists).
    """
    from ..logic.oterms import OTerm
    from ..logic.rules import BodyItem, Rule

    for operand in (left, right):
        if operand is None:
            continue

        def rename(name):
            mapped = result.is_name(operand.name, name)
            return mapped if mapped is not None else name

        def rename_element(element):
            if isinstance(element, OTerm) and isinstance(element.class_name, str):
                return OTerm(
                    element.object_term, rename(element.class_name), element.bindings
                )
            return element

        for integrated_rule in operand.rules:
            rule = integrated_rule.rule
            renamed = Rule(
                tuple(rename_element(h) for h in rule.heads),
                tuple(
                    BodyItem(rename_element(item.element), item.positive)
                    for item in rule.body
                ),
                rule.name,
            )
            result.add_rule(
                renamed,
                principle=integrated_rule.principle,
                evaluable=integrated_rule.evaluable,
            )


def _lift_assertion(
    assertion: ClassAssertion, left: "_Item", right: "_Item"
) -> Optional[ClassAssertion]:
    """Rename an original-pair assertion to the current operand schemas.

    Classes map through the operand result's (flattened) ``IS`` map;
    attribute names map through the integrated attributes' recorded
    origins.  Returns None when a concept cannot be mapped.
    """
    def lift_side(path: Path, item: "_Item") -> Optional[Path]:
        if item.result is None:
            return path  # original schema, nothing to rename
        return _lift_path(path, item.result)

    left_is_source = assertion.left_schema in left.originals
    source_item = left if left_is_source else right
    target_item = right if left_is_source else left

    new_sources = []
    for source in assertion.sources:
        lifted = lift_side(source, source_item)
        if lifted is None:
            return None
        new_sources.append(lifted)
    new_target = lift_side(assertion.target, target_item)
    if new_target is None:
        return None

    def lift_value(corr: ValueCorrespondence, item: "_Item") -> Optional[ValueCorrespondence]:
        lifted_left = lift_side(corr.left, item)
        lifted_right = lift_side(corr.right, item)
        if lifted_left is None or lifted_right is None:
            return None
        return ValueCorrespondence(lifted_left, lifted_right, corr.op)

    def lift_attr(corr: AttributeCorrespondence) -> Optional[AttributeCorrespondence]:
        lifted_left = lift_side(corr.left, source_item)
        lifted_right = lift_side(corr.right, target_item)
        if lifted_left is None or lifted_right is None:
            return None
        return AttributeCorrespondence(
            lifted_left, lifted_right, corr.kind, corr.composed_name, corr.condition
        )

    def lift_agg(corr: AggregationCorrespondence) -> Optional[AggregationCorrespondence]:
        lifted_left = lift_side(corr.left, source_item)
        lifted_right = lift_side(corr.right, target_item)
        if lifted_left is None or lifted_right is None:
            return None
        return AggregationCorrespondence(lifted_left, lifted_right, corr.kind)

    value_left = [lift_value(c, source_item) for c in assertion.value_corrs_left]
    value_right = [lift_value(c, target_item) for c in assertion.value_corrs_right]
    attrs = [lift_attr(c) for c in assertion.attribute_corrs]
    aggs = [lift_agg(c) for c in assertion.aggregation_corrs]
    if any(c is None for c in value_left + value_right + attrs + aggs):
        return None
    return ClassAssertion(
        kind=assertion.kind,
        sources=tuple(new_sources),
        target=new_target,
        value_corrs_left=tuple(value_left),  # type: ignore[arg-type]
        value_corrs_right=tuple(value_right),  # type: ignore[arg-type]
        attribute_corrs=tuple(attrs),  # type: ignore[arg-type]
        aggregation_corrs=tuple(aggs),  # type: ignore[arg-type]
    )


def _lift_path(path: Path, result: IntegratedSchema) -> Optional[Path]:
    """Map one path through one intermediate integration result."""
    integrated_name = result.is_name(path.schema, path.class_name)
    if integrated_name is None:
        return None
    if path.is_class_path:
        return Path(result.name, integrated_name)
    integrated_class = result.cls(integrated_name)
    # Map the first element through attribute origins; deeper elements
    # keep their names (nested structure is preserved by copying).
    first = path.elements[0]
    renamed = first
    for attribute in integrated_class.attributes.values():
        if any(
            s == path.schema and c == path.class_name and a == first
            for s, c, a in attribute.origins
        ):
            renamed = attribute.name
            break
    else:
        for aggregation in integrated_class.aggregations.values():
            if any(
                s == path.schema and c == path.class_name and a == first
                for s, c, a in aggregation.origins
            ):
                renamed = aggregation.name
                break
    return Path(
        result.name,
        integrated_name,
        (renamed,) + path.elements[1:],
        path.name_reference,
    )
