"""Federated fact lifting and rule evaluation (§3, §5, Appendix B).

The FSM answers global queries by combining

1. **lifted base facts** — component extents renamed to integrated
   concepts (``inst$IS(A)`` / ``att$IS(A)$attr``), with attribute values
   translated through the ``F^A_{DB_i,B}`` data mappings, plus the
   ``same_object`` facts the identity specs produce;
2. **inheritance rules** — ``inst$parent(x) ⇐ inst$child(x)`` per
   integrated is-a link (the extension semantics of typing O-terms);
3. **the integrated schema's derivation rules** (Principles 3-5).

Two evaluation paths exist, as in the paper: the production bottom-up
engine (:class:`FederationEngine`, semi-naive, handles recursion) and
the faithful Appendix B top-down evaluator (:func:`appendix_b_program`),
whose :class:`AgentSource` fetches one concept extension per call — the
paper's autonomy argument made observable.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.planner import QueryPlan
    from ..runtime.runtime import FederationRuntime

from ..integration.result import IntegratedSchema
from ..logic.atoms import Atom
from ..logic.engine import FactStore, FactTuple, QueryEngine, iter_value_elements
from ..logic.labelled import LabelledProgram, SchemaSource
from ..logic.oterms import att_predicate, inst_predicate, parse_predicate
from ..logic.rules import DatalogRule, Rule, compile_rules
from ..model.store import ComponentStore
from .agent import FSMAgent
from .mappings import MappingRegistry, SameObjectSpec, same_object_facts


def inheritance_rules(integrated: IntegratedSchema) -> List[Rule]:
    """``inst$parent(x) ⇐ inst$child(x)`` for every integrated is-a link."""
    from ..logic.oterms import OTerm

    rules: List[Rule] = []
    for child, parent in integrated.is_a_links():
        rules.append(
            Rule.of(
                OTerm.of("?x", parent),
                [OTerm.of("?x", child)],
                name=f"is_a({child},{parent})",
            )
        )
    return rules


def _ancestor_chain(integrated: IntegratedSchema, name: str) -> List[str]:
    """*name* and all its integrated ancestors (BFS order)."""
    chain = [name]
    frontier = list(integrated.parents(name))
    while frontier:
        current = frontier.pop(0)
        if current not in chain:
            chain.append(current)
            frontier.extend(integrated.parents(current))
    return chain


def lift_facts(
    integrated: IntegratedSchema,
    databases: Mapping[str, ComponentStore],
    mappings: Optional[MappingRegistry] = None,
    same_specs: Sequence[SameObjectSpec] = (),
    runtime: Optional["FederationRuntime"] = None,
    plan: Optional["QueryPlan"] = None,
) -> FactStore:
    """Compile all component extents into integrated-name facts.

    For every non-virtual integrated class ``N`` with origin ``(s, c)``:
    each instance of ``c``'s *direct* extent in schema *s* yields
    ``inst$N(oid)``, and per integrated attribute of ``N`` (or of an
    integrated ancestor of ``N``) with an origin in *s*, one
    ``att$...(oid, translated_value)`` fact per value element.
    Aggregation values (OIDs) lift untranslated under the aggregation's
    integrated name.

    With a *runtime*, every needed direct extent is first fetched in one
    concurrent fan-out (cached, retried, circuit-broken); the lifting
    loop then runs over the prefetched scans.  Extents the runtime could
    not serve (failed agents under the ``PARTIAL`` policy) lift as empty.

    A *plan* (:class:`~repro.runtime.planner.QueryPlan`) restricts both
    the prefetch and the lifting loop to the integrated classes that can
    contribute to its query — the §6 pruning closure guarantees skipped
    classes cannot change the answer — and threads the pushdown hint
    into every prefetch scan.
    """
    mappings = mappings or MappingRegistry()
    store = FactStore()

    prefetched: Optional[Dict[Tuple[str, str], List[Any]]] = None
    if runtime is not None:
        pairs = [
            (schema_name, class_name)
            for integrated_class in integrated
            if not integrated_class.virtual
            and (plan is None or plan.allows(integrated_class.name))
            for schema_name, class_name in integrated_class.origins
            if schema_name in databases
        ]
        prefetched = runtime.scan_extents(
            pairs, op="direct_extent", hint=plan.hint if plan is not None else None
        )

    for integrated_class in integrated:
        if integrated_class.virtual:
            continue
        if plan is not None and not plan.allows(integrated_class.name):
            continue
        for schema_name, class_name in integrated_class.origins:
            database = databases.get(schema_name)
            if database is None:
                continue
            local_class = database.schema.effective_class(class_name)
            local_ancestry = {class_name} | database.schema.ancestors(class_name)
            targets = _ancestor_chain(integrated, integrated_class.name)
            extent = (
                prefetched.get((schema_name, class_name), [])
                if prefetched is not None
                else database.direct_extent(class_name)
            )
            for instance in extent:
                for target_name in targets:
                    store.add(inst_predicate(target_name), (instance.oid,))
                    target = integrated.cls(target_name)
                    for attribute in target.attributes.values():
                        for o_schema, o_class, o_attr in attribute.origins:
                            if o_schema != schema_name or o_class not in local_ancestry:
                                continue
                            if not local_class.has_member(o_attr):
                                continue
                            value = instance.get(o_attr)
                            if value is None:
                                continue
                            mapping = mappings.resolve(
                                attribute.name, schema_name, o_attr
                            )
                            for descriptor, element in iter_value_elements(
                                attribute.name, value
                            ):
                                translated = mapping.translate(element)
                                if translated is not None:
                                    store.add(
                                        att_predicate(target_name, descriptor),
                                        (instance.oid, translated),
                                    )
                    for aggregation in target.aggregations.values():
                        for o_schema, o_class, o_attr in aggregation.origins:
                            if o_schema != schema_name or o_class not in local_ancestry:
                                continue
                            value = instance.get(o_attr)
                            if value is None:
                                continue
                            elements = (
                                value if isinstance(value, frozenset) else (value,)
                            )
                            for element in elements:
                                store.add(
                                    att_predicate(target_name, aggregation.name),
                                    (instance.oid, element),
                                )
    if same_specs:
        same_object_facts(same_specs, databases, store)
    return store


class FederationContext:
    """A live :class:`~repro.integration.result.ValueContext`.

    Answers ``value_set`` from component extents and ``paired_values``
    from the same-object specs — making the value-set specifications of
    Principles 1 and 3 (unions, differences, AIF applications,
    concatenations) executable against real data.
    """

    def __init__(
        self,
        databases: Mapping[str, ComponentStore],
        same_specs: Sequence[SameObjectSpec] = (),
    ) -> None:
        self._databases = databases
        self._same_specs = list(same_specs)

    def value_set(self, schema: str, class_name: str, attribute: str) -> Set[Any]:
        database = self._databases.get(schema)
        if database is None:
            return set()
        return database.value_set(class_name, attribute)

    def paired_values(self, left, right) -> List[Tuple[Any, Any]]:
        left_schema, left_class, left_attr = left
        right_schema, right_class, right_attr = right
        left_db = self._databases.get(left_schema)
        right_db = self._databases.get(right_schema)
        if left_db is None or right_db is None:
            return []
        pair_index: Dict[Any, List[Any]] = {}
        for spec in self._same_specs:
            if (
                spec.left_schema == left_schema
                and spec.left_class == left_class
                and spec.right_schema == right_schema
                and spec.right_class == right_class
            ):
                key_spec = spec
                break
        else:
            return []
        right_by_key: Dict[Any, List[Any]] = {}
        for instance in right_db.extent(right_class):
            key = key_spec.mapping.translate(instance.get(key_spec.right_key))
            if key is not None:
                right_by_key.setdefault(key, []).append(instance)
        pairs: List[Tuple[Any, Any]] = []
        for instance in left_db.extent(left_class):
            key = instance.get(key_spec.left_key)
            if key is None:
                continue
            for partner in right_by_key.get(key, ()):
                pairs.append((instance.get(left_attr), partner.get(right_attr)))
        return pairs


class FederationEngine:
    """Bottom-up federated query engine over an integrated schema."""

    def __init__(
        self,
        integrated: IntegratedSchema,
        databases: Mapping[str, ComponentStore],
        mappings: Optional[MappingRegistry] = None,
        same_specs: Sequence[SameObjectSpec] = (),
        runtime: Optional["FederationRuntime"] = None,
        plan: Optional["QueryPlan"] = None,
    ) -> None:
        self.integrated = integrated
        self.runtime = runtime
        self.plan = plan
        if runtime is not None:
            with runtime.timer("lift_facts"):
                base = lift_facts(
                    integrated, databases, mappings, same_specs, runtime, plan
                )
        else:
            base = lift_facts(
                integrated, databases, mappings, same_specs, plan=plan
            )
        rules = integrated.evaluable_rules() + inheritance_rules(integrated)
        self._engine = QueryEngine(rules, base)

    def ask(self, *goals: Atom) -> List[Dict[str, Any]]:
        return self._engine.ask(*goals)

    def instances_of(self, class_name: str) -> List[Any]:
        """OIDs (or skolem tokens) populating an integrated class."""
        answers = self.ask(Atom.of(inst_predicate(class_name), "?o"))
        return [answer["o"] for answer in answers]

    def attribute_values(self, class_name: str, attribute: str) -> Set[Any]:
        answers = self.ask(Atom.of(att_predicate(class_name, attribute), "?o", "?v"))
        return {answer["v"] for answer in answers}

    @property
    def query_engine(self) -> QueryEngine:
        return self._engine


def evaluate_value_set(
    integrated: IntegratedSchema,
    class_name: str,
    attribute: str,
    databases: Mapping[str, ComponentStore],
    same_specs: Sequence[SameObjectSpec] = (),
) -> Set[Any]:
    """Compute ``value_set(IS_attr)`` of one integrated attribute.

    Executes the attribute's :class:`ValueSetSpec` (Principle 1/3
    semantics) against live component data — Example 6's union, the
    intersection splits, Example 8's AIF.
    """
    integrated_class = integrated.cls(class_name)
    try:
        spec = integrated_class.attributes[attribute].spec
    except KeyError:
        from ..errors import IntegrationError

        raise IntegrationError(
            f"integrated class {class_name!r} has no attribute {attribute!r}"
        ) from None
    context = FederationContext(databases, same_specs)
    return spec.evaluate(context, integrated.aifs)


class AgentSource(SchemaSource):
    """Appendix B source: one schema served live by its FSM-agent.

    ``fetch`` answers only mangled concept predicates (``inst$N`` /
    ``att$N$a``) whose integrated class has an origin in this schema,
    pulling exactly one class extension per call — never a rule, never
    a join: locals stay autonomous.
    """

    def __init__(
        self,
        schema_name: str,
        agent: FSMAgent,
        integrated: IntegratedSchema,
        mappings: Optional[MappingRegistry] = None,
        runtime: Optional["FederationRuntime"] = None,
    ) -> None:
        super().__init__(schema_name)
        self._agent = agent
        self._integrated = integrated
        self._mappings = mappings or MappingRegistry()
        self._runtime = runtime

    def _extent(self, schema_name: str, local_class: str):
        """One class extension — through the runtime when attached."""
        if self._runtime is not None:
            return self._runtime.extent(schema_name, local_class)
        return self._agent.fetch_extent(schema_name, local_class)

    def _nested_descriptors(self, local_class: str, attr: str, base: str) -> List[str]:
        """Flattened descriptors under one local attribute (Def 4.1 paths)."""
        from ..model.attributes import ClassType

        schema = self._agent.export_schema(self.name)
        descriptors = [base]

        def walk(class_name: str, prefix: str, depth: int) -> None:
            if depth > 4:  # nested records are shallow in practice
                return
            effective = schema.effective_class(class_name)
            for nested in effective.attributes:
                dotted = f"{prefix}.{nested.name}"
                descriptors.append(dotted)
                if isinstance(nested.value_type, ClassType):
                    walk(nested.value_type.class_name, dotted, depth + 1)

        effective = schema.effective_class(local_class)
        attribute = effective.get_attribute(attr)
        if attribute is not None and isinstance(attribute.value_type, ClassType):
            walk(attribute.value_type.class_name, base, 0)
        return descriptors

    def concepts(self) -> Tuple[str, ...]:
        names: List[str] = []
        for integrated_class in self._integrated:
            if any(s == self.name for s, _ in integrated_class.origins):
                names.append(inst_predicate(integrated_class.name))
                for attribute in integrated_class.attributes.values():
                    for o_schema, o_class, o_attr in attribute.origins:
                        if o_schema != self.name:
                            continue
                        for descriptor in self._nested_descriptors(
                            o_class, o_attr, attribute.name
                        ):
                            names.append(
                                att_predicate(integrated_class.name, descriptor)
                            )
                        break
                for aggregation in integrated_class.aggregations.values():
                    if any(s == self.name for s, _, _ in aggregation.origins):
                        names.append(
                            att_predicate(integrated_class.name, aggregation.name)
                        )
        return tuple(names)

    def fetch(self, predicate: str) -> Set[FactTuple]:
        self.fetch_count += 1
        parsed = parse_predicate(predicate)
        if parsed is None:
            return set()
        class_name, descriptor = parsed
        if class_name not in self._integrated.classes:
            return set()
        integrated_class = self._integrated.cls(class_name)
        result: Set[FactTuple] = set()
        for schema_name, local_class in integrated_class.origins:
            if schema_name != self.name:
                continue
            if descriptor is None:
                for instance in self._extent(schema_name, local_class):
                    result.add((instance.oid,))
                continue
            # Nested (dotted) descriptors address inside a complex
            # attribute: the top-level member owns the origin mapping.
            top_level, _, _ = descriptor.partition(".")
            member = integrated_class.attributes.get(
                top_level
            ) or integrated_class.aggregations.get(top_level)
            if member is None:
                continue
            for o_schema, o_class, o_attr in member.origins:
                if o_schema != schema_name:
                    continue
                mapping = self._mappings.resolve(descriptor, schema_name, o_attr)
                for instance in self._extent(schema_name, local_class):
                    value = instance.get(o_attr)
                    if value is None:
                        continue
                    for flattened, element in iter_value_elements(top_level, value):
                        if flattened != descriptor:
                            continue
                        translated = mapping.translate(element)
                        if translated is not None:
                            result.add((instance.oid, translated))
        return result


def appendix_b_program(
    integrated: IntegratedSchema,
    agents: Mapping[str, FSMAgent],
    mappings: Optional[MappingRegistry] = None,
    same_specs: Sequence[SameObjectSpec] = (),
    databases: Optional[Mapping[str, ComponentStore]] = None,
    runtime: Optional["FederationRuntime"] = None,
) -> LabelledProgram:
    """Build the Appendix B labelled program for an integrated schema.

    *agents* maps schema name → hosting agent.  ``same_object`` facts
    (needed by Principle 3 rules) are served by an extra synthetic
    source when *same_specs* and *databases* are provided.  With a
    *runtime*, every source's extension fetches run through the extent
    cache and the executor's failure model.
    """
    sources: List[SchemaSource] = [
        AgentSource(schema_name, agent, integrated, mappings, runtime)
        for schema_name, agent in agents.items()
    ]
    if same_specs and databases:
        store = same_object_facts(same_specs, databases)
        sources.append(SchemaSource("__identity__", store))
    rules: List[DatalogRule] = compile_rules(
        integrated.evaluable_rules() + inheritance_rules(integrated)
    )
    return LabelledProgram(rules, sources)
