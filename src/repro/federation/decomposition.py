"""Query decomposition: planning a global query over component schemas.

The paper's conclusion names "automatic decomposition and translation of
queries submitted to an integrated schema" as the natural next step for
the generated rules.  This module implements that step as far as the
integrated schema's provenance allows:

* :func:`decompose_query` — given a federated query against an
  integrated class, produce one :class:`LocalSubQuery` per component
  schema that contributes base facts, translating the integrated
  attribute names (and, through the mapping registry, constant values)
  back to local vocabulary;
* :func:`explain` — a printable plan: which local classes are scanned,
  which derivation rules may fire, which virtual classes are involved.

Rule-derived answers cannot be pushed down (they *join across*
databases); the plan reports them as federation-level work, which is
exactly Appendix B's division of labour.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Tuple

from ..errors import QueryError
from ..integration.result import IntegratedSchema
from ..logic.oterms import inst_predicate, parse_predicate
from .mappings import MappingRegistry
from .query import FederatedQuery


@dataclasses.dataclass(frozen=True)
class LocalSubQuery:
    """A selection/projection that one component database can answer."""

    schema: str
    class_name: str
    where: Tuple[Tuple[str, Any], ...]
    select: Tuple[str, ...]

    def __str__(self) -> str:
        conditions = ", ".join(f"{a}={v!r}" for a, v in self.where)
        outputs = ", ".join(self.select) or "*"
        return f"{self.schema}: scan {self.class_name}({conditions}) -> {outputs}"


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The decomposition of one federated query."""

    query: FederatedQuery
    sub_queries: Tuple[LocalSubQuery, ...]
    rules: Tuple[str, ...]  # derivation rules that may contribute
    virtual: bool  # queried class is rule-defined only

    def describe(self) -> str:
        lines = [f"plan for: {self.query}"]
        if self.virtual:
            lines.append("  (virtual class — answers come from rules only)")
        for sub_query in self.sub_queries:
            lines.append(f"  {sub_query}")
        for rule in self.rules:
            lines.append(f"  federation-level rule: {rule}")
        return "\n".join(lines)


def _local_member(
    integrated: IntegratedSchema,
    class_name: str,
    attribute: str,
    schema: str,
) -> Optional[str]:
    """The local name of an integrated attribute in *schema*, or None."""
    integrated_class = integrated.cls(class_name)
    top_level, dot, rest = attribute.partition(".")
    member = integrated_class.attributes.get(
        top_level
    ) or integrated_class.aggregations.get(top_level)
    if member is None:
        return None
    for origin_schema, _, origin_attr in member.origins:
        if origin_schema == schema:
            return origin_attr + (dot + rest if dot else "")
    return None


def _rules_deriving(integrated: IntegratedSchema, class_name: str) -> List[str]:
    """Evaluable rules whose head can contribute to *class_name*."""
    target_inst = inst_predicate(class_name)
    texts: List[str] = []
    for integrated_rule in integrated.rules:
        if not integrated_rule.evaluable:
            continue
        for compiled in integrated_rule.rule.compile():
            parsed = parse_predicate(compiled.head.predicate)
            if compiled.head.predicate == target_inst or (
                parsed is not None and parsed[0] == class_name
            ):
                texts.append(str(integrated_rule.rule))
                break
    return texts


def decompose_query(
    query: FederatedQuery,
    integrated: IntegratedSchema,
    mappings: Optional[MappingRegistry] = None,
) -> QueryPlan:
    """Plan *query* against *integrated*; raises for unknown classes.

    Each origin ``(schema, local_class)`` of the queried class yields one
    sub-query whose attribute names (in both filters and outputs) are
    translated to local vocabulary; filters on attributes that schema
    does not provide make the sub-query drop the condition and leave the
    test to the federation layer (conservative over-fetch, never a wrong
    answer).
    """
    if query.class_name not in integrated.classes:
        raise QueryError(
            f"integrated schema has no class {query.class_name!r}"
        )
    integrated_class = integrated.cls(query.class_name)
    sub_queries: List[LocalSubQuery] = []
    for schema, local_class in integrated_class.origins:
        local_where: List[Tuple[str, Any]] = []
        for attribute, value in query.where:
            local_attr = _local_member(integrated, query.class_name, attribute, schema)
            if local_attr is not None:
                local_where.append((local_attr, value))
        local_select: List[str] = []
        for attribute in query.select:
            local_attr = _local_member(integrated, query.class_name, attribute, schema)
            if local_attr is not None:
                local_select.append(local_attr)
        sub_queries.append(
            LocalSubQuery(
                schema, local_class, tuple(local_where), tuple(local_select)
            )
        )
    rules = _rules_deriving(integrated, query.class_name)
    return QueryPlan(
        query=query,
        sub_queries=tuple(sub_queries),
        rules=tuple(rules),
        virtual=integrated_class.virtual,
    )


def explain(
    query: "FederatedQuery | str",
    integrated: IntegratedSchema,
    mappings: Optional[MappingRegistry] = None,
) -> str:
    """One-call printable plan."""
    if isinstance(query, str):
        query = FederatedQuery.parse(query)
    return decompose_query(query, integrated, mappings).describe()
