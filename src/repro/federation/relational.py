"""An in-memory relational store — the component-DBMS substitute (§3).

The paper's component databases are relational systems (the Informix
example) whose schemas are transformed to OO form before integration.
:class:`RelationalDatabase` provides just enough of a relational system
for that pipeline: named relations with typed columns, tuples numbered
"in the normal way" so the §3 OID scheme applies, optional foreign keys
(which the transformer turns into aggregation functions), and the
select/project scan a federation agent performs on behalf of the FSM.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import DuplicateDefinitionError, ModelError, RegistrationError
from ..model.datatypes import DataType, conforms
from ..model.oids import OID, OIDGenerator


@dataclasses.dataclass(frozen=True)
class Column:
    """A typed relational column."""

    name: str
    data_type: DataType = DataType.STRING

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("column name must be non-empty")


@dataclasses.dataclass(frozen=True)
class ForeignKey:
    """``relation.column`` references ``target_relation.target_column``."""

    column: str
    target_relation: str
    target_column: str


class Relation:
    """A named relation: columns, foreign keys and numbered tuples."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        if not name:
            raise ModelError("relation name must be non-empty")
        if not columns:
            raise ModelError(f"relation {name!r} needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise DuplicateDefinitionError(f"relation {name!r} has duplicate columns")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.primary_key = primary_key or columns[0].name
        if self.primary_key not in names:
            raise ModelError(
                f"relation {name!r}: primary key {self.primary_key!r} is not a column"
            )
        for foreign_key in foreign_keys:
            if foreign_key.column not in names:
                raise ModelError(
                    f"relation {name!r}: FK column {foreign_key.column!r} is "
                    f"not a column"
                )
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        self._rows: List[Tuple[OID, Dict[str, Any]]] = []

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise ModelError(f"relation {self.name!r} has no column {name!r}")

    # ------------------------------------------------------------------
    def _insert(self, oid: OID, values: Mapping[str, Any]) -> OID:
        row: Dict[str, Any] = {}
        for column in self.columns:
            value = values.get(column.name)
            if not conforms(value, column.data_type):
                raise ModelError(
                    f"relation {self.name!r}: value {value!r} does not conform "
                    f"to column {column.name}: {column.data_type}"
                )
            row[column.name] = value
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise ModelError(
                f"relation {self.name!r}: unknown columns {sorted(unknown)}"
            )
        self._rows.append((oid, row))
        return oid

    def rows(self) -> List[Tuple[OID, Dict[str, Any]]]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class RelationalDatabase:
    """A component relational database with §3 OIDs.

    Parameters mirror the OID scheme: *agent* and *system* name the
    FSM-agent and DBMS this database is installed in.
    """

    def __init__(self, name: str, agent: str = "agent1", system: str = "informix") -> None:
        self.name = name
        self.agent = agent
        self.system = system
        self._relations: Dict[str, Relation] = {}
        self._generator = OIDGenerator(agent, system, name)

    # ------------------------------------------------------------------
    def create_relation(
        self,
        name: str,
        columns: Sequence[Any],
        primary_key: Optional[str] = None,
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> Relation:
        """Create a relation; columns may be Column objects or names."""
        if name in self._relations:
            raise DuplicateDefinitionError(
                f"database {self.name!r} already has relation {name!r}"
            )
        normalized = [
            column if isinstance(column, Column) else Column(str(column))
            for column in columns
        ]
        relation = Relation(name, normalized, primary_key, foreign_keys)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise RegistrationError(
                f"database {self.name!r} has no relation {name!r}"
            ) from None

    def relations(self) -> Tuple[Relation, ...]:
        return tuple(self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    # ------------------------------------------------------------------
    def insert(self, relation_name: str, values: Mapping[str, Any]) -> OID:
        """Insert a tuple; returns its federation-wide OID."""
        relation = self.relation(relation_name)
        oid = self._generator.next_oid(relation_name)
        return relation._insert(oid, values)

    def insert_many(
        self, relation_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[OID]:
        return [self.insert(relation_name, row) for row in rows]

    # ------------------------------------------------------------------
    def scan(
        self,
        relation_name: str,
        predicate: Optional[Callable[[Mapping[str, Any]], bool]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> List[Tuple[OID, Dict[str, Any]]]:
        """Select/project: the local query interface agents expose."""
        relation = self.relation(relation_name)
        wanted = tuple(columns) if columns is not None else relation.column_names
        for column in wanted:
            relation.column(column)  # validates
        results: List[Tuple[OID, Dict[str, Any]]] = []
        for oid, row in relation.rows():
            if predicate is None or predicate(row):
                results.append((oid, {column: row[column] for column in wanted}))
        return results

    def lookup(self, relation_name: str, column: str, value: Any) -> List[OID]:
        """OIDs of tuples whose *column* equals *value*."""
        return [
            oid for oid, _ in self.scan(relation_name, lambda row: row[column] == value)
        ]
