"""FSM-agents: local system management (§3, Fig 1).

An FSM-agent "corresponds to local system management and addresses all
the issues w.r.t. schema translations and exports as well as local
transaction and query processing."  :class:`FSMAgent` hosts component
databases — native object stores or relational databases wrapped through
:mod:`repro.federation.transform` — and exposes exactly the narrow
interface the FSM layer may use:

* export of the (transformed) local schema;
* extent / value-set / attribute scans of one class.

Every access is counted, so the autonomy property (the FSM never
evaluates rules inside a component system, Appendix B) is testable.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Set, Tuple

from ..errors import RegistrationError
from ..model.database import ObjectDatabase
from ..model.instances import ObjectInstance
from ..model.schema import Schema
from ..model.store import ComponentStore
from .relational import RelationalDatabase
from .transform import materialize_view


class FSMAgent:
    """A local-management agent hosting one or more component databases."""

    def __init__(self, name: str, system: str = "pyoodb") -> None:
        if not name:
            raise RegistrationError("agent name must be non-empty")
        self.name = name
        self.system = system
        self._databases: Dict[str, ComponentStore] = {}
        self.access_count = 0
        self.accessed_classes: Set[Tuple[str, str]] = set()
        #: delta-feed lookups served (not extent scans; see fetch_changes)
        self.delta_fetches = 0
        # the federation runtime scans agents from a thread pool; the
        # autonomy counters must stay exact under concurrent access
        self._access_lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def host_object_database(self, database: ObjectDatabase) -> ObjectDatabase:
        """Install a native object database; keyed by its schema name."""
        schema_name = database.schema.name
        if schema_name in self._databases:
            raise RegistrationError(
                f"agent {self.name!r} already hosts schema {schema_name!r}"
            )
        self._databases[schema_name] = database
        return database

    def host_relational_database(
        self, database: RelationalDatabase, schema_name: str = ""
    ) -> ObjectDatabase:
        """Install a relational database through the OO transformation."""
        _, view = materialize_view(database, schema_name or database.name)
        return self.host_object_database(view)

    def host_source(self, store: ComponentStore) -> ComponentStore:
        """Install any component store — e.g. a disk-backed source
        adapter's :class:`~repro.sources.SourceDatabase` — behind the
        same narrow FSM-facing interface as a native object database."""
        schema_name = store.schema.name
        if schema_name in self._databases:
            raise RegistrationError(
                f"agent {self.name!r} already hosts schema {schema_name!r}"
            )
        self._databases[schema_name] = store
        return store

    # ------------------------------------------------------------------
    # exports (the FSM-facing interface)
    # ------------------------------------------------------------------
    def schema_names(self) -> Tuple[str, ...]:
        return tuple(self._databases)

    def export_schema(self, schema_name: str) -> Schema:
        return self._database(schema_name).schema

    def database(self, schema_name: str) -> ComponentStore:
        """Direct access for in-process tooling (examples, tests)."""
        return self._database(schema_name)

    def fetch_extent(self, schema_name: str, class_name: str) -> List[ObjectInstance]:
        """The extension of one class — a local query."""
        self._record(schema_name, class_name)
        return self._database(schema_name).extent(class_name)

    def fetch_direct_extent(
        self, schema_name: str, class_name: str
    ) -> List[ObjectInstance]:
        self._record(schema_name, class_name)
        return self._database(schema_name).direct_extent(class_name)

    def fetch_value_set(
        self, schema_name: str, class_name: str, attribute: str
    ) -> Set[Any]:
        self._record(schema_name, class_name)
        return self._database(schema_name).value_set(class_name, attribute)

    def fetch_changes(self, schema_name: str, since: int) -> Any:
        """The store's delta chain from version *since*, or ``None`` when
        it keeps no feed (plain object databases).

        This is control-plane metadata, not a rule evaluation or an
        extent scan, so it is *not* counted in :attr:`access_count` —
        the autonomy property measures extent traffic; it is tallied
        separately in :attr:`delta_fetches`.
        """
        store = self._database(schema_name)
        changes_since = getattr(store, "changes_since", None)
        if changes_since is None:
            return None
        with self._access_lock:
            self.delta_fetches += 1
        from ..runtime.deltas import DeltaReply  # lazy: runtime imports agents

        chain = changes_since(since)
        return DeltaReply(chain if chain is None else tuple(chain))

    # ------------------------------------------------------------------
    def _database(self, schema_name: str) -> ComponentStore:
        try:
            return self._databases[schema_name]
        except KeyError:
            raise RegistrationError(
                f"agent {self.name!r} hosts no schema {schema_name!r}"
            ) from None

    def _record(self, schema_name: str, class_name: str) -> None:
        with self._access_lock:
            self.access_count += 1
            self.accessed_classes.add((schema_name, class_name))
