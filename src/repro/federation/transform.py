"""Relational → object-oriented schema transformation (§3, ref [6]).

"Each local schema is first transformed into an object-oriented one to
remove model conflicts."  The paper's own rule-based strategy (ref [6])
maps, in essence:

* each relation to a class — "if a relation is translated into a class,
  then each of its tuples will be assigned an OID";
* each non-FK column to an attribute of the same primitive type;
* each foreign key to an aggregation function toward the referenced
  relation's class, with cardinality ``[m:1]`` (many tuples reference
  one target) — refined to ``[1:1]`` when the FK column is the
  relation's primary key.

"The data residing in a local database should not be translated, but
rather be referenced": :func:`materialize_view` therefore produces an
object *view* whose instances wrap the relational tuples under their §3
OIDs; the tuples stay where they are.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..model.aggregations import AggregationFunction, Cardinality
from ..model.attributes import Attribute
from ..model.classes import ClassDef
from ..model.database import ObjectDatabase
from ..model.instances import ObjectInstance
from ..model.oids import OID
from ..model.schema import Schema
from .relational import RelationalDatabase


def transform_schema(database: RelationalDatabase, schema_name: str = "") -> Schema:
    """Derive the OO schema of *database* (classes, attributes, aggs)."""
    schema = Schema(schema_name or database.name)
    for relation in database.relations():
        fk_columns = {fk.column for fk in relation.foreign_keys}
        class_def = ClassDef(relation.name)
        for column in relation.columns:
            if column.name in fk_columns:
                continue
            class_def.add_attribute(Attribute(column.name, column.data_type))
        for foreign_key in relation.foreign_keys:
            cardinality = (
                Cardinality.ONE_TO_ONE
                if foreign_key.column == relation.primary_key
                else Cardinality.M_TO_ONE
            )
            class_def.add_aggregation(
                AggregationFunction(
                    name=foreign_key.column,
                    range_class=foreign_key.target_relation,
                    cardinality=cardinality,
                )
            )
        schema.add_class(class_def)
    schema.validate()
    return schema


def materialize_view(
    database: RelationalDatabase, schema_name: str = ""
) -> Tuple[Schema, ObjectDatabase]:
    """The OO view over *database*: schema plus wrapped instances.

    FK values are resolved to target-tuple OIDs so aggregation functions
    dereference exactly as in a native object store; dangling references
    stay unresolved (None) rather than failing, preserving autonomy —
    a federation must not reject a component's existing data.
    """
    schema = transform_schema(database, schema_name)
    view = ObjectDatabase(
        schema, agent=database.agent, system=database.system, validate=False
    )

    # First pass: index every tuple's OID by (relation, pk value).
    pk_index: Dict[Tuple[str, object], OID] = {}
    for relation in database.relations():
        for oid, row in relation.rows():
            pk_index[(relation.name, row[relation.primary_key])] = oid

    for relation in database.relations():
        fk_by_column = {fk.column: fk for fk in relation.foreign_keys}
        for oid, row in relation.rows():
            attributes = {
                column: value
                for column, value in row.items()
                if column not in fk_by_column
            }
            aggregations: Dict[str, OID] = {}
            for column, foreign_key in fk_by_column.items():
                target_oid = pk_index.get(
                    (foreign_key.target_relation, row[column])
                )
                if target_oid is not None:
                    aggregations[column] = target_oid
            view.adopt(ObjectInstance(oid, relation.name, attributes, aggregations))
    return schema, view


def wrapped_instances(view: ObjectDatabase) -> List[ObjectInstance]:
    """All instances of a materialized view (test/debug helper)."""
    return list(view)
