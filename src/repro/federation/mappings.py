"""Data mappings ``F^A_{DB_i,B}`` and same-object resolution (§3).

For each attribute ``A`` of the integrated schema, a data mapping per
component attribute ``B`` records how values correspond.  The paper
names three forms, all implemented here:

* the string ``"default"`` — all actual values of B form a subset of A
  (:class:`DefaultMapping`, identity translation);
* a set of triples ``(a, b; χ)`` with ``χ ∈ [0, 1]`` — fuzzy value
  correspondence (:class:`TripleMapping`), answering both the translated
  values above a degree threshold and the degree itself;
* a simple function ``y = f(x)`` such as ``y = 2.54·x``
  (:class:`FunctionMapping`).

Beyond value translation, Principle 1/3's side condition "oi1 = oi2 (in
terms of data mapping)" needs cross-database *object identity*.
:class:`SameObjectSpec` declares which key attributes identify objects
across two classes (optionally through a value mapping), and
:func:`same_object_facts` turns live extents into the ``same_object``
facts the generated rules consume.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import MappingError
from ..integration.principle_intersection import SAME_OBJECT
from ..logic.engine import FactStore
from ..model.store import ComponentStore


class DataMapping:
    """Base interface: translate a component value into integrated form."""

    def translate(self, value: Any) -> Any:
        raise NotImplementedError

    def translate_set(self, values: Iterable[Any]) -> Set[Any]:
        return {
            translated
            for value in values
            if (translated := self.translate(value)) is not None
        }


class DefaultMapping(DataMapping):
    """``"default"``: B's values are already a subset of A's domain."""

    def translate(self, value: Any) -> Any:
        return value

    def __repr__(self) -> str:
        return "DefaultMapping()"


@dataclasses.dataclass
class TripleMapping(DataMapping):
    """A set of triples ``(a, b; χ)``: b of B corresponds to a of A.

    ``translate`` returns the best-matching ``a`` whose degree meets
    *threshold* (ties broken by higher degree, then by value order for
    determinism); ``degree`` exposes χ for fuzzy-aware callers (ref [5]).
    """

    triples: Tuple[Tuple[Any, Any, float], ...]
    threshold: float = 0.0

    def __post_init__(self) -> None:
        for a, b, chi in self.triples:
            if not 0.0 <= chi <= 1.0:
                raise MappingError(
                    f"correspondence degree must be in [0, 1], got {chi!r} "
                    f"for ({a!r}, {b!r})"
                )

    @classmethod
    def of(cls, *triples: Tuple[Any, Any, float], threshold: float = 0.0) -> "TripleMapping":
        return cls(tuple(triples), threshold)

    def translate(self, value: Any) -> Any:
        best: Optional[Tuple[float, Any]] = None
        for a, b, chi in self.triples:
            if b == value and chi >= self.threshold:
                if best is None or chi > best[0]:
                    best = (chi, a)
        return best[1] if best else None

    def degree(self, a: Any, b: Any) -> float:
        """χ for the pair (a, b); 0.0 when unrelated."""
        degrees = [chi for a2, b2, chi in self.triples if a2 == a and b2 == b]
        return max(degrees, default=0.0)


@dataclasses.dataclass
class FunctionMapping(DataMapping):
    """``y = f(x)``, e.g. ``y = 2.54 · x`` for inch→cm conversion."""

    function: Callable[[Any], Any]
    description: str = "y = f(x)"

    def translate(self, value: Any) -> Any:
        if value is None:
            return None
        return self.function(value)

    def __repr__(self) -> str:
        return f"FunctionMapping({self.description})"


class MappingRegistry:
    """All data mappings of a federation, keyed ``F^A_{DB_i, B}``.

    The key is (integrated attribute A, source schema DB_i, source
    attribute B); lookups fall back to :class:`DefaultMapping`, matching
    the paper's most common case.
    """

    def __init__(self) -> None:
        self._mappings: Dict[Tuple[str, str, str], DataMapping] = {}
        self._default = DefaultMapping()

    def register(
        self,
        integrated_attribute: str,
        source_schema: str,
        source_attribute: str,
        mapping: DataMapping,
    ) -> None:
        self._mappings[(integrated_attribute, source_schema, source_attribute)] = mapping

    def resolve(
        self, integrated_attribute: str, source_schema: str, source_attribute: str
    ) -> DataMapping:
        return self._mappings.get(
            (integrated_attribute, source_schema, source_attribute), self._default
        )

    def __len__(self) -> int:
        return len(self._mappings)


@dataclasses.dataclass(frozen=True)
class SameObjectSpec:
    """Key-attribute identity across two local classes.

    Objects of ``(left_schema, left_class)`` and ``(right_schema,
    right_class)`` denote the same real-world entity when their key
    attributes agree after translating the right value through *mapping*
    (default: identity).  One spec per intersecting/equivalent class
    pair; social-security numbers in the paper's examples.
    """

    left_schema: str
    left_class: str
    left_key: str
    right_schema: str
    right_class: str
    right_key: str
    mapping: DataMapping = dataclasses.field(default_factory=DefaultMapping)


def same_object_facts(
    specs: Iterable[SameObjectSpec],
    databases: Mapping[str, ComponentStore],
    store: Optional[FactStore] = None,
) -> FactStore:
    """Compute ``same_object(oid1, oid2)`` facts from live extents.

    Facts are emitted symmetrically (both orders) so generated rules may
    test identity in either direction.
    """
    store = store or FactStore()
    for spec in specs:
        left_db = databases.get(spec.left_schema)
        right_db = databases.get(spec.right_schema)
        if left_db is None or right_db is None:
            raise MappingError(
                f"same-object spec references unregistered schema "
                f"({spec.left_schema!r} or {spec.right_schema!r})"
            )
        right_index: Dict[Any, List[Any]] = {}
        for instance in right_db.extent(spec.right_class):
            key = spec.mapping.translate(instance.get(spec.right_key))
            if key is not None:
                right_index.setdefault(key, []).append(instance.oid)
        for instance in left_db.extent(spec.left_class):
            key = instance.get(spec.left_key)
            if key is None:
                continue
            for right_oid in right_index.get(key, ()):
                store.add(SAME_OBJECT, (instance.oid, right_oid))
                store.add(SAME_OBJECT, (right_oid, instance.oid))
    return store
