"""Global queries against the integrated schema.

A federated query names an integrated class, filters on attribute
values and selects attribute outputs — the ``?- uncle(John, y)`` shape
of Appendix B in object-schema clothing::

    query = FederatedQuery("uncle", where={"niece_nephew": "John"},
                           select=["Ussn#"])
    rows = query.run(engine)

Queries compile to conjunctions of ``inst$C`` / ``att$C$a`` atoms and
run on either evaluation path (bottom-up :class:`FederationEngine` or an
Appendix B :class:`~repro.logic.labelled.LabelledProgram`).  A small
textual form is provided for the examples::

    FederatedQuery.parse("uncle(niece_nephew='John') -> Ussn#")
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from ..logic.atoms import Atom
from ..logic.labelled import LabelledProgram
from ..logic.oterms import att_predicate, inst_predicate
from ..logic.terms import Constant, Variable
from .evaluation import FederationEngine

_QUERY_RE = re.compile(
    r"^\s*(?P<cls>[\w$#-]+)\s*\(\s*(?P<where>[^)]*)\)\s*(?:->\s*(?P<select>.+))?$"
)
_COND_RE = re.compile(r"^\s*(?P<attr>[\w.$#-]+)\s*=\s*(?P<value>.+?)\s*$")


@dataclasses.dataclass(frozen=True)
class FederatedQuery:
    """A conjunctive query over one integrated class."""

    class_name: str
    where: Tuple[Tuple[str, Any], ...] = ()
    select: Tuple[str, ...] = ()

    @classmethod
    def of(
        cls,
        class_name: str,
        where: Optional[Mapping[str, Any]] = None,
        select: Sequence[str] = (),
    ) -> "FederatedQuery":
        return cls(class_name, tuple((where or {}).items()), tuple(select))

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FederatedQuery":
        """Build a query from a JSON-shaped mapping (the service wire form).

        Two shapes are accepted: ``{"query": "uncle(...) -> Ussn#"}``
        (the textual DSL) or the structured
        ``{"class": "uncle", "where": {...}, "select": [...]}``.
        """
        if not isinstance(payload, Mapping):
            raise QueryError(
                f"query payload must be a JSON object, got {type(payload).__name__}"
            )
        text = payload.get("query")
        if text is not None:
            if not isinstance(text, str):
                raise QueryError("payload key 'query' must be a string")
            return cls.parse(text)
        class_name = payload.get("class") or payload.get("class_name")
        if not isinstance(class_name, str) or not class_name:
            raise QueryError(
                "query payload needs a 'query' string or a 'class' name"
            )
        where = payload.get("where") or {}
        if not isinstance(where, Mapping):
            raise QueryError("payload key 'where' must be an object")
        select = payload.get("select") or ()
        if isinstance(select, str):
            select = (select,)
        if not isinstance(select, Sequence) or not all(
            isinstance(s, str) for s in select
        ):
            raise QueryError("payload key 'select' must be a list of strings")
        return cls.of(class_name, dict(where), tuple(select))

    def to_payload(self) -> Dict[str, Any]:
        """The structured wire form :meth:`from_payload` round-trips."""
        return {
            "class": self.class_name,
            "where": dict(self.where),
            "select": list(self.select),
        }

    @classmethod
    def parse(cls, text: str) -> "FederatedQuery":
        """Parse ``cls(attr='v', ...) -> out1, out2`` (conditions optional)."""
        match = _QUERY_RE.match(text.strip().removeprefix("?-").strip())
        if not match:
            raise QueryError(f"malformed query {text!r}")
        where: Dict[str, Any] = {}
        conditions = match.group("where").strip()
        if conditions:
            for part in conditions.split(","):
                condition = _COND_RE.match(part)
                if not condition:
                    raise QueryError(f"malformed condition {part!r} in {text!r}")
                where[condition.group("attr")] = _parse_value(condition.group("value"))
        select_text = match.group("select") or ""
        select = tuple(s.strip() for s in select_text.split(",") if s.strip())
        return cls(match.group("cls"), tuple(where.items()), select)

    # ------------------------------------------------------------------
    def atoms(self) -> List[Atom]:
        """Compile to a conjunction; object variable is ``?o``."""
        object_var = Variable("o")
        goals: List[Atom] = [Atom(inst_predicate(self.class_name), (object_var,))]
        for attribute, value in self.where:
            goals.append(
                Atom(
                    att_predicate(self.class_name, attribute),
                    (object_var, Constant(value)),
                )
            )
        for index, attribute in enumerate(self.select):
            goals.append(
                Atom(
                    att_predicate(self.class_name, attribute),
                    (object_var, Variable(f"out{index}")),
                )
            )
        return goals

    def run(
        self, engine: Union[FederationEngine, LabelledProgram]
    ) -> List[Dict[str, Any]]:
        """Execute; rows map selected attribute names (plus ``oid``)."""
        goals = self.atoms()
        if isinstance(engine, FederationEngine):
            raw = engine.ask(*goals)
        else:
            raw = _run_labelled(engine, goals)
        rows: List[Dict[str, Any]] = []
        for answer in raw:
            row: Dict[str, Any] = {"oid": answer.get("o")}
            for index, attribute in enumerate(self.select):
                row[attribute] = answer.get(f"out{index}")
            rows.append(row)
        return rows

    def __str__(self) -> str:
        conditions = ", ".join(f"{a}={v!r}" for a, v in self.where)
        outputs = ", ".join(self.select)
        text = f"{self.class_name}({conditions})"
        return f"{text} -> {outputs}" if outputs else text


def _run_labelled(program: LabelledProgram, goals: List[Atom]) -> List[Dict[str, Any]]:
    """Join goal answers from a labelled program (small conjunctions)."""
    if not goals:
        return []
    results: List[Dict[str, Any]] = [dict()]
    for goal in goals:
        answers = program.evaluation(goal)
        joined: List[Dict[str, Any]] = []
        for partial in results:
            for answer in answers:
                merged = dict(partial)
                ok = True
                for key, value in answer.items():
                    if key in merged and merged[key] != value:
                        ok = False
                        break
                    merged[key] = value
                if ok:
                    joined.append(merged)
        results = joined
    deduped: List[Dict[str, Any]] = []
    seen = set()
    for row in results:
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        try:
            hashable = hash(key)
        except TypeError:
            hashable = repr(key)
        if hashable not in seen:
            seen.add(hashable)
            deduped.append(row)
    return deduped


def _parse_value(token: str) -> Any:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token
