"""Workloads: synthetic generators (§6.3 settings) and paper scenarios."""

from .generators import (
    federated_cluster,
    inclusion_chain,
    match_at_depth,
    mirrored_pair,
    populate,
    random_tree_schema,
)
from .scenarios import (
    appendix_a,
    bibliography,
    car_prices,
    fig4_suite,
    genealogy,
    stock_market,
)

__all__ = [
    "appendix_a",
    "bibliography",
    "car_prices",
    "federated_cluster",
    "fig4_suite",
    "genealogy",
    "inclusion_chain",
    "match_at_depth",
    "mirrored_pair",
    "populate",
    "random_tree_schema",
    "stock_market",
]
