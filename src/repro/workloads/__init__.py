"""Workloads: synthetic generators (§6.3 settings) and paper scenarios."""

from .generators import (
    federated_cluster,
    inclusion_chain,
    match_at_depth,
    mirrored_pair,
    populate,
    random_tree_schema,
)
from .scenarios import (
    appendix_a,
    bibliography,
    car_prices,
    fig4_suite,
    genealogy,
    stock_market,
)
from .source_scenarios import (
    SourceFederation,
    build_memory_databases,
    generate_source_federation,
    source_fsm,
    write_csv,
    write_json,
    write_source_directory,
    write_sqlite,
)

__all__ = [
    "SourceFederation",
    "appendix_a",
    "bibliography",
    "build_memory_databases",
    "car_prices",
    "federated_cluster",
    "fig4_suite",
    "generate_source_federation",
    "genealogy",
    "inclusion_chain",
    "match_at_depth",
    "mirrored_pair",
    "populate",
    "random_tree_schema",
    "source_fsm",
    "stock_market",
    "write_csv",
    "write_json",
    "write_source_directory",
    "write_sqlite",
]
