"""Synthetic schema/assertion workloads for the §6.3 benchmarks.

The complexity analysis assumes "both S1 and S2 have tree structures and
each concept from S1 has exactly one equivalent counterpart from S2",
with degree *d* and height *h*.  These generators build exactly that
setting (plus controlled deviations):

* :func:`random_tree_schema` — a tree-shaped schema of *n* classes with
  average degree *d*, attributes included so assertions validate;
* :func:`mirrored_pair` — S2 as a structural mirror of S1 with renamed
  concepts and an assertion set matching a configurable fraction of
  classes by ≡ / ⊆ / ∩ / ∅ (the §6.1 observation mix);
* :func:`inclusion_chain` — the Fig 8 ladder: one S1 class included in a
  length-*k* S2 chain, for the link-redundancy benchmark;
* :func:`match_at_depth` — S1's root equivalent to an S2 node at chosen
  depth, the two "extreme cases" of the Ω_h recurrence.

All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..assertions.assertion_set import AssertionSet
from ..assertions.class_assertions import (
    equivalence,
    exclusion,
    inclusion,
    intersection,
)
from ..assertions.paths import Path
from ..assertions.attribute_assertions import AttributeCorrespondence
from ..assertions.kinds import AttributeKind
from ..model.classes import ClassDef
from ..model.schema import Schema


def random_tree_schema(
    name: str,
    size: int,
    degree: int = 3,
    seed: int = 7,
    class_prefix: str = "C",
    attributes_per_class: int = 2,
    rng: Optional[random.Random] = None,
) -> Schema:
    """A tree-shaped schema of *size* classes with branching ≈ *degree*.

    All draws come from one :class:`random.Random` — the explicit *rng*
    when given, else one seeded with *seed* — so equal seeds produce
    identical schemas, run to run and process to process.
    """
    rng = rng if rng is not None else random.Random(seed)
    schema = Schema(name)
    for index in range(size):
        class_def = ClassDef(f"{class_prefix}{index}")
        for a in range(attributes_per_class):
            class_def.attr(f"a{a}")
        if index > 0:
            # Parent chosen among recent nodes to keep branching near *degree*.
            low = max(0, (index - 1) // degree * 1)
            parent_index = rng.randint(max(0, index - degree * 2), index - 1)
            class_def.add_parent(f"{class_prefix}{parent_index}")
        schema.add_class(class_def)
    schema.validate()
    return schema


def mirrored_pair(
    size: int,
    degree: int = 3,
    seed: int = 7,
    equivalence_fraction: float = 1.0,
    inclusion_fraction: float = 0.0,
    intersection_fraction: float = 0.0,
    exclusion_fraction: float = 0.0,
    rng: Optional[random.Random] = None,
) -> Tuple[Schema, Schema, AssertionSet]:
    """S1 plus a mirrored S2 and the assertion set between them.

    Every S1 class ``Ci`` has the counterpart ``Di``; fractions select
    (deterministically, by hash of the index) which pairs receive which
    assertion kind.  Fractions are taken in order ≡, ⊆, ∩, ∅ and may sum
    to less than 1 (the remainder gets no assertion).
    """
    left = random_tree_schema("S1", size, degree, seed, class_prefix="C")
    right = random_tree_schema("S2", size, degree, seed, class_prefix="D")
    assertions = AssertionSet("S1", "S2")
    boundaries = [
        equivalence_fraction,
        equivalence_fraction + inclusion_fraction,
        equivalence_fraction + inclusion_fraction + intersection_fraction,
        equivalence_fraction
        + inclusion_fraction
        + intersection_fraction
        + exclusion_fraction,
    ]
    # The two trees intentionally share *seed* (mirrored structure); only
    # the assertion-kind rolls take the explicit rng when one is given.
    rng = rng if rng is not None else random.Random(seed + 1)
    for index in range(size):
        c = Path("S1", f"C{index}")
        d = Path("S2", f"D{index}")
        roll = rng.random()
        corr = (
            AttributeCorrespondence(
                c.child("a0"), d.child("a0"), AttributeKind.EQUIVALENCE
            ),
        )
        if roll < boundaries[0]:
            assertions.add(equivalence(c, d, attribute_corrs=corr))
        elif roll < boundaries[1]:
            assertions.add(inclusion(c, d))
        elif roll < boundaries[2] and index > 0:
            assertions.add(intersection(c, d))
        elif roll < boundaries[3] and index > 0:
            assertions.add(exclusion(c, d))
    return left, right, assertions


def inclusion_chain(
    chain_length: int, declare_all: bool = True
) -> Tuple[Schema, Schema, AssertionSet]:
    """The Fig 8 setting: ``S1.A ⊆ S2.B1 ⊆ ... ⊆ S2.Bk`` locally chained.

    With *declare_all* every ``A ⊆ Bi`` is asserted (the paper's worst
    case for a [33]-style integrator: k redundant links); with False only
    the most general inclusion ``A ⊆ B1`` is declared.
    """
    left = Schema("S1")
    left.add_class(ClassDef("A").attr("a0"))
    right = Schema("S2")
    previous: Optional[str] = None
    for index in range(1, chain_length + 1):
        class_def = ClassDef(f"B{index}").attr("a0")
        if previous is not None:
            class_def.add_parent(previous)
        right.add_class(class_def)
        previous = f"B{index}"
    # B1 is the top of the chain; Bk the most specific.
    assertions = AssertionSet("S1", "S2")
    targets = range(1, chain_length + 1) if declare_all else (1,)
    for index in targets:
        assertions.add(inclusion(Path("S1", "A"), Path("S2", f"B{index}")))
    left.validate()
    right.validate()
    return left, right, assertions


def match_at_depth(
    size: int, depth: int, degree: int = 2, seed: int = 3
) -> Tuple[Schema, Schema, AssertionSet]:
    """The §6.3 extreme cases: S1 mirrors a *subtree* of S2 at *depth*.

    S2 consists of a chain of *depth* filler classes with a mirror of S1
    hanging below; every S1 class has its equivalent counterpart in that
    subtree.  ``depth=0`` is the "roots match" extreme; larger depths
    approach the "root matches deep inside S2" extreme of the Ω_h
    recurrence — the matching work stays O(size), only the descent adds.
    """
    left = random_tree_schema("S1", size, degree, seed, class_prefix="C")
    mirror = random_tree_schema("S2", size, degree, seed, class_prefix="D")
    right = Schema("S2")
    previous: Optional[str] = None
    for index in range(depth):
        filler = ClassDef(f"F{index}").attr("a0")
        if previous is not None:
            filler.add_parent(previous)
        right.add_class(filler)
        previous = f"F{index}"
    for class_def in mirror:
        copy = class_def.copy()
        if not copy.parents and previous is not None:
            copy.add_parent(previous)
        right.add_class(copy)
    right.validate()
    assertions = AssertionSet("S1", "S2")
    for index in range(size):
        assertions.add(
            equivalence(Path("S1", f"C{index}"), Path("S2", f"D{index}"))
        )
    return left, right, assertions


def federated_cluster(
    schemas: int = 4,
    per_class: int = 8,
    classes_per_schema: int = 2,
    seed: int = 13,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Schema], str, Dict[str, "object"]]:
    """*schemas* mirrored component schemas, chained ≡ assertions, data.

    The federation-runtime workload: every schema ``Si`` defines the same
    ``person0..personK`` classes (``ssn#``, ``name``, ``grade``); the DSL
    text asserts each consecutive pair equivalent attribute-by-attribute,
    so :meth:`FSM.integrate_all <repro.federation.fsm.FSM.integrate_all>`
    folds the cluster into one global class per shape.  Each schema gets
    its own populated :class:`~repro.model.database.ObjectDatabase`
    (distinct OID agents, disjoint ssn values), ready to be hosted one
    per FSM-agent — the ≥ 4-agent fan-out scenario.
    """
    from ..model.database import ObjectDatabase

    rng = rng if rng is not None else random.Random(seed)
    names = [f"S{index + 1}" for index in range(schemas)]
    built: List[Schema] = []
    for name in names:
        schema = Schema(name)
        for shape in range(classes_per_schema):
            schema.add_class(
                ClassDef(f"person{shape}")
                .attr("ssn#")
                .attr("name")
                .attr("grade", "integer")
            )
        schema.validate()
        built.append(schema)
    blocks: List[str] = []
    for left_name, right_name in zip(names, names[1:]):
        for shape in range(classes_per_schema):
            cls = f"person{shape}"
            blocks.append(
                f"""
                assertion {left_name}.{cls} == {right_name}.{cls}
                  attr {left_name}.{cls}.ssn# == {right_name}.{cls}.ssn#
                  attr {left_name}.{cls}.name == {right_name}.{cls}.name
                  attr {left_name}.{cls}.grade == {right_name}.{cls}.grade
                end
                """
            )
    databases: Dict[str, "object"] = {}
    for index, schema in enumerate(built):
        database = ObjectDatabase(schema, agent=f"host{index + 1}")
        for shape in range(classes_per_schema):
            for row in range(per_class):
                database.insert(
                    f"person{shape}",
                    {
                        "ssn#": f"{schema.name}-{shape}-{row}",
                        "name": f"p{index + 1}_{shape}_{row}",
                        "grade": rng.randint(1, 5),
                    },
                )
        databases[schema.name] = database
    return built, "\n".join(blocks), databases


def populate(
    schema: Schema,
    per_class: int,
    seed: int = 11,
    rng: Optional[random.Random] = None,
) -> "object":
    """An :class:`ObjectDatabase` with *per_class* instances per class."""
    from ..model.database import ObjectDatabase

    rng = rng if rng is not None else random.Random(seed)
    database = ObjectDatabase(schema, agent="bench")
    for class_def in schema:
        effective = schema.effective_class(class_def.name)
        for _ in range(per_class):
            values: Dict[str, str] = {
                attribute.name: f"v{rng.randint(0, per_class * 4)}"
                for attribute in effective.attributes
                if not attribute.multivalued and not attribute.is_complex
            }
            database.insert(class_def.name, values)
    return database
