"""The paper's worked examples as reusable fixtures.

Each function reconstructs one scenario from the text — schemas,
assertion DSL and (where queries are exercised) populated databases —
so tests, examples and benchmarks share a single source of truth:

* :func:`appendix_a` — Fig 18 / Example 12 (person/human university).
* :func:`genealogy` — Example 3 / 9 / Appendix B (parent, brother → uncle).
* :func:`bibliography` — Examples 4 / 11 (Book/Author path equivalence).
* :func:`stock_market` — the §4.1 stock / stock-in-March-April classes.
* :func:`car_prices` — Example 5 / 10 (schematic discrepancy, Figs 7-10).
* :func:`fig4_suite` — the four assertions of Fig 4 with their classes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..model.classes import ClassDef
from ..model.database import ObjectDatabase
from ..model.schema import Schema


def appendix_a() -> Tuple[Schema, Schema, str]:
    """Fig 18(a)+(b): the schemas and assertion set of the sample trace."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("person").attr("ssn#").attr("name"))
    s1.add_class(ClassDef("student", parents=["person"]).attr("gpa"))
    s1.add_class(ClassDef("lecturer", parents=["person"]).attr("salary"))
    s1.add_class(ClassDef("teaching_assistant", parents=["lecturer"]))
    s2 = Schema("S2")
    s2.add_class(ClassDef("human").attr("ssn#").attr("name"))
    s2.add_class(ClassDef("employee", parents=["human"]).attr("income"))
    s2.add_class(ClassDef("faculty", parents=["employee"]).attr("rank"))
    s2.add_class(ClassDef("professor", parents=["faculty"]))
    assertions = """
    assertion S1.person == S2.human
      attr S1.person.ssn# == S2.human.ssn#
      attr S1.person.name == S2.human.name
    end
    assertion S1.lecturer <= S2.employee
    assertion S1.lecturer <= S2.faculty
    assertion S1.teaching_assistant <= S2.employee
    assertion S1.teaching_assistant <= S2.faculty
    assertion S1.student ^ S2.faculty
    """
    return s1, s2, assertions


def genealogy(populated: bool = True) -> Tuple[Schema, Schema, str, Dict[str, ObjectDatabase]]:
    """Example 3 / Fig 5: parent & brother (S1), uncle (S2)."""
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("parent").attr("Pssn#").attr("name").attr("children", multivalued=True)
    )
    s1.add_class(
        ClassDef("brother").attr("Bssn#").attr("name").attr("brothers", multivalued=True)
    )
    s2 = Schema("S2")
    s2.add_class(
        ClassDef("uncle").attr("Ussn#").attr("name").attr("niece_nephew", multivalued=True)
    )
    assertions = """
    assertion S1(parent, brother) -> S2.uncle
      value S1.parent.Pssn# in S1.brother.brothers
      attr S1.brother.Bssn# == S2.uncle.Ussn#
      attr S1.parent.children >= S2.uncle.niece_nephew
    end
    """
    databases: Dict[str, ObjectDatabase] = {}
    if populated:
        db1 = ObjectDatabase(s1, agent="agent1")
        # Mary (P1) is John's parent; Bill (B1) lists Mary among his siblings.
        db1.insert("parent", {"Pssn#": "P1", "name": "Mary", "children": ["John"]})
        db1.insert("parent", {"Pssn#": "P2", "name": "Sue", "children": ["Ann", "Tom"]})
        db1.insert("brother", {"Bssn#": "B1", "name": "Bill", "brothers": ["P1"]})
        db1.insert("brother", {"Bssn#": "B2", "name": "Carl", "brothers": ["P2", "P9"]})
        db2 = ObjectDatabase(s2, agent="agent2")
        db2.insert("uncle", {"Ussn#": "U9", "name": "Ted", "niece_nephew": ["Alice"]})
        databases = {"S1": db1, "S2": db2}
    return s1, s2, assertions, databases


def bibliography() -> Tuple[Schema, Schema, str]:
    """Examples 4 / 11: Book (S1) and Author (S2) with nested structure."""
    s1 = Schema("S1")
    s1.add_class(ClassDef("person_rec").attr("name").attr("birthday", "date"))
    s1.add_class(
        ClassDef("Book").attr("ISBN").attr("title").attr("author", "person_rec")
    )
    s2 = Schema("S2")
    s2.add_class(ClassDef("book_rec").attr("ISBN").attr("title"))
    s2.add_class(
        ClassDef("Author").attr("name").attr("birthday", "date").attr("book", "book_rec")
    )
    # Fig 6(b)/(c) declare the ISBN/title pair in one direction and the
    # name/birthday pair in the other; each direction here carries both
    # groups so the generated rules materialize complete virtual objects.
    assertions = """
    assertion S1.Book -> S2.Author
      attr S1.Book.ISBN == S2.Author.book.ISBN
      attr S1.Book.title == S2.Author.book.title
      attr S1.Book.author.name == S2.Author.name
      attr S1.Book.author.birthday == S2.Author.birthday
    end
    assertion S2.Author -> S1.Book
      attr S2.Author.name == S1.Book.author.name
      attr S2.Author.birthday == S1.Book.author.birthday
      attr S2.Author.book.ISBN == S1.Book.ISBN
      attr S2.Author.book.title == S1.Book.title
    end
    """
    return s1, s2, assertions


def stock_market() -> Tuple[Schema, Schema, str]:
    """§4.1's with-condition example: stock vs stock-in-March-April."""
    s2 = Schema("S2")
    s2.add_class(
        ClassDef("stock").attr("time").attr("stock-name").attr("price", "integer")
    )
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("stock-in-March-April")
        .attr("stock-name")
        .attr("price-in-March", "integer")
        .attr("price-in-April", "integer")
    )
    assertions = """
    assertion S1.stock-in-March-April -> S2.stock
      attr S1.stock-in-March-April.stock-name == S2.stock.stock-name
      attr S1.stock-in-March-April.price-in-March <= S2.stock.price with S2.stock.time = 'March'
      attr S1.stock-in-March-April.price-in-April <= S2.stock.price with S2.stock.time = 'April'
    end
    """
    return s1, s2, assertions


def car_prices(car_names: Tuple[str, ...] = ("vw", "bmw")) -> Tuple[Schema, Schema, str]:
    """Example 5 / Figs 7-10: the schema-conflict car-price databases.

    ``S1.car1`` stores (time, car-name, price) per instance; ``S2.car2``
    has one *attribute per car* storing its price — attribute names are
    data, the paper's extreme schematic discrepancy.
    """
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("car1").attr("time").attr("car-name").attr("price", "integer")
    )
    s2 = Schema("S2")
    car2 = ClassDef("car2").attr("time")
    for car in car_names:
        car2.attr(car, "integer")
    s2.add_class(car2)
    lines = ["assertion S2.car2 -> S1.car1", "  attr S2.car2.time == S1.car1.time"]
    for car in car_names:
        lines.append(
            f"  attr S2.car2.{car} <= S1.car1.price with S1.car1.car-name = '{car}'"
        )
    lines.append("end")
    return s1, s2, "\n".join(lines)


def fig4_suite() -> Tuple[Schema, Schema, str]:
    """The four Fig 4 assertions with supporting classes.

    Includes person ≡ human (composed-into, ⊇), book ⊆ publication
    (aggregation ≡), faculty ∩ student (AIF case) and man ∅ woman
    (reverse aggregation) under the shared person/human parents.
    """
    s1 = Schema("S1")
    s1.add_class(
        ClassDef("person")
        .attr("ssn#")
        .attr("full_name")
        .attr("city")
        .attr("interests", multivalued=True)
    )
    s1.add_class(ClassDef("publisher").attr("name"))
    s1.add_class(
        ClassDef("book")
        .attr("ISBN")
        .attr("title")
        .attr("auther")
        .agg("published_by", "publisher", "[m:1]")
    )
    s1.add_class(
        ClassDef("faculty", parents=["person"])
        .attr("fssn#")
        .attr("name")
        .attr("income", "integer")
        .agg("work_in", "department", "[m:1]")
    )
    s1.add_class(ClassDef("department").attr("dname"))
    s1.add_class(
        ClassDef("man", parents=["person"])
        .attr("mssn#")
        .attr("name")
        .attr("occupation")
        .agg("spouse", "person", "[1:1]")
    )
    s2 = Schema("S2")
    s2.add_class(
        ClassDef("human")
        .attr("hssn#")
        .attr("name")
        .attr("street-number")
        .attr("hobby", multivalued=True)
    )
    s2.add_class(ClassDef("press").attr("name"))
    s2.add_class(
        ClassDef("publication")
        .attr("ISBN")
        .attr("title")
        .attr("contributors", multivalued=True)
        .agg("published_by", "press", "[m:1]")
    )
    s2.add_class(
        ClassDef("student", parents=["human"])
        .attr("ssn#")
        .attr("name")
        .attr("study_support", "integer")
        .agg("work_in", "institute", "[m:n]")
    )
    s2.add_class(ClassDef("institute").attr("iname"))
    s2.add_class(
        ClassDef("woman", parents=["human"])
        .attr("wssn#")
        .attr("name")
        .attr("occupation")
        .agg("spouse", "human", "[1:1]")
    )
    assertions = """
    # Fig 4(a)
    assertion S1.person == S2.human
      attr S1.person.ssn# == S2.human.hssn#
      attr S1.person.full_name == S2.human.name
      attr S1.person.city alpha(address) S2.human.street-number
      attr S1.person.interests >= S2.human.hobby
    end
    # Fig 4(b)
    assertion S1.book <= S2.publication
      attr S1.book.ISBN == S2.publication.ISBN
      attr S1.book.title == S2.publication.title
      attr S1.book.auther <= S2.publication.contributors
      agg S1.book.published_by == S2.publication.published_by
    end
    # Fig 4(c)
    assertion S1.faculty ^ S2.student
      attr S1.faculty.fssn# == S2.student.ssn#
      attr S1.faculty.name == S2.student.name
      attr S1.faculty.income ^ S2.student.study_support
      agg S1.faculty.work_in == S2.student.work_in
    end
    # Fig 4(d)
    assertion S1.man ! S2.woman
      attr S1.man.mssn# == S2.woman.wssn#
      attr S1.man.name == S2.woman.name
      attr S1.man.occupation == S2.woman.occupation
      agg S1.man.spouse rev S2.woman.spouse
    end
    # supporting context: related range classes (Principle 6 needs the
    # aggregation ranges' relationship declared before links merge)
    assertion S1.publisher == S2.press
      attr S1.publisher.name == S2.press.name
    end
    assertion S1.department == S2.institute
    """
    return s1, s2, assertions
