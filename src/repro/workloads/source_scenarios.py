"""Disk-backed federation scenarios: universities × hospitals × markets.

The source-adapter benchmarks need federations that are (a) large —
10⁵–10⁶ instances, far past the in-memory workloads' ceiling — and (b)
heterogeneous in the §3 sense: the same real-world concept stored under
different column names, value encodings and units per component, so the
per-attribute data mappings actually do work on every scan.

:func:`generate_source_federation` builds such a federation
deterministically from one seed: every component schema has a ``person``
class (after mapping: ``ssn``, ``name``, ``level``), a small lookup
relation it references, and a bulk fact relation referencing the people.
The *level* attribute is deliberately stored three different ways:

* ``university`` — an INTEGER column, the paper's ``"default"`` mapping;
* ``hospital`` — a STRING column ``lvl`` (``"L1"``…``"L5"``) mapped
  through a fuzzy triple set ``(i, "Li"; 1.0)``;
* ``market`` — an INTEGER basis-point column ``level_bp`` (100…500)
  through the conversion function ``y = 0.01·x``.

After mapping, all three agree — which is what the cross-backend parity
suite and the E-R7 answers-match gate pin down.  Writers materialize the
same dataset as sqlite files, CSV directories or JSON directories plus a
``federation.json`` manifest, and :func:`build_memory_databases` serves
it straight from memory as the parity baseline.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import random
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SourceConfigError
from ..federation.mappings import TripleMapping
from ..federation.relational import Column, ForeignKey
from ..model.datatypes import DataType
from ..sources.base import (
    ColumnMapping,
    LinearMapping,
    MemorySourceAdapter,
    RelationSpec,
    SourceDatabase,
)
from ..sources.manifest import mapping_to_json, relation_to_json, write_manifest

DEFAULT_SCHEMAS = ("university", "hospital", "market")

#: OID components shared by every backend: the same logical federation
#: materialized as sqlite, CSV, JSON or memory must issue identical OIDs.
SOURCE_SYSTEM = "component"

_LEVELS = (1, 2, 3, 4, 5)


@dataclasses.dataclass
class SourceFederation:
    """A generated federation: specs, rows, mappings and assertions."""

    seed: int
    people_per_schema: int
    records_per_person: int
    schemas: Tuple[str, ...]
    relations: Dict[str, Tuple[RelationSpec, ...]]
    rows: Dict[str, Dict[str, List[Dict[str, Any]]]]
    mappings: Dict[str, Dict[str, Tuple[ColumnMapping, ...]]]
    assertions: str

    @property
    def total_instances(self) -> int:
        """Total tuples across every schema — each becomes one OID."""
        return sum(
            len(relation_rows)
            for schema_rows in self.rows.values()
            for relation_rows in schema_rows.values()
        )

    def agent_name(self, schema: str) -> str:
        return f"agent-{schema}"


def _string(name: str) -> Column:
    return Column(name, DataType.STRING)


def _integer(name: str) -> Column:
    return Column(name, DataType.INTEGER)


def _template(
    schema: str, people: int, records: int, rng: random.Random
) -> Tuple[
    Tuple[RelationSpec, ...],
    Dict[str, List[Dict[str, Any]]],
    Dict[str, Tuple[ColumnMapping, ...]],
]:
    """Relations, rows and mappings of one component schema."""
    lookups = max(3, people // 200)
    lookup_name, bulk_name, person_extra, bulk_extra = {
        "university": ("department", "enrollment", "dept", ("course", "mark")),
        "hospital": ("ward", "visit", "ward", ("day", "cost")),
        "market": ("sector", "trade", "sector", ("symbol", "qty")),
    }.get(schema, ("category", "record", "category", ("label", "amount")))

    lookup_spec = RelationSpec(
        lookup_name, (_string("code"), _string("title")), primary_key="code"
    )
    level_column, person_mappings = _level_storage(schema)
    person_spec = RelationSpec(
        "person",
        (
            _string("ssn"),
            _string("name"),
            level_column,
            _string(person_extra),
        ),
        primary_key="ssn",
        foreign_keys=(ForeignKey(person_extra, lookup_name, "code"),),
    )
    bulk_spec = RelationSpec(
        bulk_name,
        (
            _integer("id"),
            _string("person_ssn"),
            _string(bulk_extra[0]),
            _integer(bulk_extra[1]),
        ),
        primary_key="id",
        foreign_keys=(ForeignKey("person_ssn", "person", "ssn"),),
    )

    lookup_rows = [
        {"code": f"{lookup_name[0]}{index}", "title": f"{lookup_name}-{index}"}
        for index in range(lookups)
    ]
    person_rows: List[Dict[str, Any]] = []
    bulk_rows: List[Dict[str, Any]] = []
    for index in range(people):
        level = rng.choice(_LEVELS)
        # a few NULL names per schema exercise the default-value fill
        name = None if rng.random() < 0.02 else f"{schema[:3]}-name-{index}"
        person_rows.append(
            {
                "ssn": f"{schema}-{index}",
                "name": name,
                level_column.name: _encode_level(schema, level),
                person_extra: lookup_rows[rng.randrange(lookups)]["code"],
            }
        )
        for record in range(records):
            bulk_rows.append(
                {
                    "id": index * records + record + 1,
                    "person_ssn": f"{schema}-{index}",
                    bulk_extra[0]: f"{bulk_extra[0]}{rng.randrange(64)}",
                    bulk_extra[1]: rng.randint(0, 500),
                }
            )

    specs = (lookup_spec, person_spec, bulk_spec)
    rows = {
        lookup_name: lookup_rows,
        "person": person_rows,
        bulk_name: bulk_rows,
    }
    mappings: Dict[str, Tuple[ColumnMapping, ...]] = {}
    if person_mappings:
        mappings["person"] = person_mappings
    return specs, rows, mappings


def _level_storage(schema: str) -> Tuple[Column, Tuple[ColumnMapping, ...]]:
    """How one schema stores the person level, and the mapping back.

    The three storage conventions cover the paper's three data-mapping
    forms; every schema also declares a default fill for NULL names.
    """
    name_default = (
        ColumnMapping("name", default="unknown"),
    )
    if schema == "hospital":
        return (
            _string("lvl"),
            name_default
            + (
                ColumnMapping(
                    "lvl",
                    attribute="level",
                    mapping=TripleMapping(
                        tuple((level, f"L{level}", 1.0) for level in _LEVELS),
                        threshold=0.5,
                    ),
                    data_type=DataType.INTEGER,
                ),
            ),
        )
    if schema == "market":
        return (
            _integer("level_bp"),
            name_default
            + (
                ColumnMapping(
                    "level_bp",
                    attribute="level",
                    mapping=LinearMapping(a=0.01, as_int=True),
                    data_type=DataType.INTEGER,
                ),
            ),
        )
    return _integer("level"), name_default


def _encode_level(schema: str, level: int) -> Any:
    if schema == "hospital":
        return f"L{level}"
    if schema == "market":
        return level * 100
    return level


def generate_source_federation(
    people_per_schema: int = 50,
    records_per_person: int = 2,
    schemas: Sequence[str] = DEFAULT_SCHEMAS,
    seed: int = 29,
    rng: Optional[random.Random] = None,
) -> SourceFederation:
    """Generate one deterministic N-schema federation.

    Same *seed* (or an equally-seeded explicit *rng*) → an identical
    federation, row for row — the property the reproducibility
    regression test asserts, and what makes committed benchmark numbers
    comparable across machines.
    """
    if not schemas:
        raise SourceConfigError("a federation needs at least one schema")
    rng = rng if rng is not None else random.Random(seed)
    relations: Dict[str, Tuple[RelationSpec, ...]] = {}
    rows: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
    mappings: Dict[str, Dict[str, Tuple[ColumnMapping, ...]]] = {}
    for schema in schemas:
        specs, schema_rows, schema_mappings = _template(
            schema, people_per_schema, records_per_person, rng
        )
        relations[schema] = specs
        rows[schema] = schema_rows
        mappings[schema] = schema_mappings
    blocks: List[str] = []
    for left, right in zip(schemas, list(schemas)[1:]):
        blocks.append(
            f"""
            assertion {left}.person == {right}.person
              attr {left}.person.ssn == {right}.person.ssn
              attr {left}.person.name == {right}.person.name
              attr {left}.person.level == {right}.person.level
            end
            """
        )
    return SourceFederation(
        seed=seed,
        people_per_schema=people_per_schema,
        records_per_person=records_per_person,
        schemas=tuple(schemas),
        relations=relations,
        rows=rows,
        mappings=mappings,
        assertions="\n".join(blocks),
    )


# ----------------------------------------------------------------------
# materializers
# ----------------------------------------------------------------------
_SQLITE_TYPES = {
    DataType.STRING: "TEXT",
    DataType.CHARACTER: "CHAR",
    DataType.INTEGER: "INTEGER",
    DataType.REAL: "REAL",
    DataType.BOOLEAN: "BOOLEAN",
    DataType.DATE: "DATE",
}


def write_sqlite(dataset: SourceFederation, directory: Union[str, Path]) -> Dict[str, Path]:
    """One ``<schema>.db`` per schema; rows inserted in generation order
    so rowids — and therefore OID numbers — match every other backend."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, Path] = {}
    for schema in dataset.schemas:
        path = root / f"{schema}.db"
        if path.exists():
            path.unlink()
        connection = sqlite3.connect(path)
        try:
            for spec in dataset.relations[schema]:
                columns = []
                for column in spec.columns:
                    decl = f'"{column.name}" {_SQLITE_TYPES[column.data_type]}'
                    if column.name == spec.primary_key:
                        decl += " PRIMARY KEY"
                    columns.append(decl)
                for foreign_key in spec.foreign_keys:
                    columns.append(
                        f'FOREIGN KEY ("{foreign_key.column}") REFERENCES '
                        f'"{foreign_key.target_relation}" '
                        f'("{foreign_key.target_column}")'
                    )
                connection.execute(
                    f'CREATE TABLE "{spec.name}" ({", ".join(columns)})'
                )
                placeholders = ", ".join("?" for _ in spec.columns)
                connection.executemany(
                    f'INSERT INTO "{spec.name}" VALUES ({placeholders})',
                    (
                        tuple(row.get(name) for name in spec.column_names)
                        for row in dataset.rows[schema][spec.name]
                    ),
                )
            connection.commit()
        finally:
            connection.close()
        paths[schema] = path
    return paths


def write_csv(dataset: SourceFederation, directory: Union[str, Path]) -> Dict[str, Path]:
    """One directory of ``<relation>.csv`` files per schema (None → empty cell)."""
    root = Path(directory)
    paths: Dict[str, Path] = {}
    for schema in dataset.schemas:
        schema_dir = root / schema
        schema_dir.mkdir(parents=True, exist_ok=True)
        for spec in dataset.relations[schema]:
            with (schema_dir / f"{spec.name}.csv").open(
                "w", newline="", encoding="utf-8"
            ) as handle:
                writer = csv.writer(handle)
                writer.writerow(spec.column_names)
                for row in dataset.rows[schema][spec.name]:
                    writer.writerow(
                        [
                            "" if row.get(name) is None else row.get(name)
                            for name in spec.column_names
                        ]
                    )
        paths[schema] = schema_dir
    return paths


def write_json(dataset: SourceFederation, directory: Union[str, Path]) -> Dict[str, Path]:
    """One directory of ``<relation>.json`` record arrays per schema."""
    root = Path(directory)
    paths: Dict[str, Path] = {}
    for schema in dataset.schemas:
        schema_dir = root / schema
        schema_dir.mkdir(parents=True, exist_ok=True)
        for spec in dataset.relations[schema]:
            records = [
                {name: row.get(name) for name in spec.column_names}
                for row in dataset.rows[schema][spec.name]
            ]
            (schema_dir / f"{spec.name}.json").write_text(
                json.dumps(records, sort_keys=True) + "\n", encoding="utf-8"
            )
        paths[schema] = schema_dir
    return paths


_WRITERS = {"sqlite": write_sqlite, "csv": write_csv, "json": write_json}


def write_source_directory(
    dataset: SourceFederation,
    directory: Union[str, Path],
    kinds: Union[str, Mapping[str, str]] = "sqlite",
) -> Path:
    """Materialize *dataset* plus its ``federation.json`` manifest.

    *kinds* is one backend for every schema, or a per-schema mapping —
    a genuinely heterogeneous federation stores each component in a
    different format.  Returns the directory, ready for
    :func:`repro.sources.load_source_federation` / ``--source-dir``.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    per_schema = (
        {schema: kinds for schema in dataset.schemas}
        if isinstance(kinds, str)
        else dict(kinds)
    )
    entries: List[Dict[str, Any]] = []
    for schema in dataset.schemas:
        kind = per_schema.get(schema, "sqlite")
        writer = _WRITERS.get(kind)
        if writer is None:
            raise SourceConfigError(
                f"unknown backend kind {kind!r}; expected one of {sorted(_WRITERS)}"
            )
        single = SourceFederation(
            seed=dataset.seed,
            people_per_schema=dataset.people_per_schema,
            records_per_person=dataset.records_per_person,
            schemas=(schema,),
            relations={schema: dataset.relations[schema]},
            rows={schema: dataset.rows[schema]},
            mappings={schema: dataset.mappings[schema]},
            assertions="",
        )
        writer(single, root)
        entry: Dict[str, Any] = {
            "schema": schema,
            "kind": kind,
            "path": f"{schema}.db" if kind == "sqlite" else schema,
            "agent": dataset.agent_name(schema),
            "system": SOURCE_SYSTEM,
            "relations": [
                relation_to_json(spec) for spec in dataset.relations[schema]
            ],
        }
        if dataset.mappings[schema]:
            entry["mappings"] = {
                relation: [mapping_to_json(mapping) for mapping in mapping_list]
                for relation, mapping_list in dataset.mappings[schema].items()
            }
        entries.append(entry)
    write_manifest(root, entries, assertions=dataset.assertions)
    return root


def build_memory_databases(dataset: SourceFederation) -> Dict[str, SourceDatabase]:
    """Serve the dataset straight from memory — the parity baseline."""
    databases: Dict[str, SourceDatabase] = {}
    for schema in dataset.schemas:
        adapter = MemorySourceAdapter(
            schema,
            dataset.rows[schema],
            dataset.relations[schema],
            mappings=dataset.mappings[schema] or None,
            agent=dataset.agent_name(schema),
            system=SOURCE_SYSTEM,
        )
        databases[schema] = adapter.database()
    return databases


def source_fsm(databases: Mapping[str, SourceDatabase], assertions: str) -> "object":
    """An FSM with one agent per source store, assertions declared."""
    from ..federation.agent import FSMAgent
    from ..federation.fsm import FSM

    fsm = FSM()
    for schema_name, store in databases.items():
        agent = FSMAgent(f"agent-{schema_name}", system=SOURCE_SYSTEM)
        agent.host_source(store)
        fsm.register_agent(agent)
    if assertions.strip():
        fsm.declare(assertions)
    return fsm
