"""repro — a reproduction of *Integrating Heterogeneous OO Schemas*
(Yangjun Chen, ICDE 1999; JISE 16:555-591, 2000).

The library integrates independently developed object-oriented database
schemas into a single *deduction-like* global schema:

* :mod:`repro.model` — the §2 object model (classes, aggregation
  functions with cardinality constraints, O-term instances, OIDs);
* :mod:`repro.logic` — first-order rules over O-terms, reverse
  substitutions (Definitions 5.1-5.3), safety checks and two evaluators;
* :mod:`repro.assertions` — the §4 correspondence-assertion language,
  including the paper's new *derivation* assertion, with a textual DSL;
* :mod:`repro.integration` — integration principles 1-6 and the naive /
  optimized §6 algorithms with pair-check instrumentation;
* :mod:`repro.federation` — the §3 FSM / FSM-agent architecture, data
  mappings, and federated query evaluation (Appendix B);
* :mod:`repro.workloads` — paper scenarios and benchmark generators.

Quickstart::

    from repro import SchemaIntegrator
    from repro.workloads import appendix_a

    s1, s2, assertions = appendix_a()
    integrated = SchemaIntegrator(s1, s2, assertions).run()
    print(integrated.describe())
"""

from .core import FederationSession, SchemaIntegrator
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["FederationSession", "ReproError", "SchemaIntegrator", "__version__"]
