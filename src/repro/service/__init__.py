"""Federation query service: a multi-tenant HTTP surface for the FSM.

The paper's FSM answers one user at a time from one process; this
package makes the federation *a service*: N tenants — each a fully
isolated federation (own component databases, integrated schema,
extent cache, generation state) — served over HTTP, with every tenant's
agent scans multiplexed on one shared event loop.

Layers, outermost first:

* :mod:`~repro.service.server` — a stdlib asyncio HTTP/1.1 host for the
  app (no ASGI server dependency), plus :class:`ServerThread` for tests
  and benchmarks;
* :mod:`~repro.service.app` — the ASGI application: routing, error →
  status mapping, thread-pool offload of blocking federation work;
* :mod:`~repro.service.repository` — the domain layer: tenant registry,
  shared scan loop, admission control and graceful shutdown;
* :mod:`~repro.service.tenancy` — per-tenant federation construction
  and the per-tenant in-flight fairness gate;
* :mod:`~repro.service.asgi` / :mod:`~repro.service.serialization` —
  ASGI framing primitives and the JSON vocabulary shared with the CLI's
  ``query --json`` output.

Typical embedding::

    from repro.service import (
        FederationRepository, TenantConfig, create_app, ServiceServer,
    )

    repository = FederationRepository()
    repository.add_tenant(TenantConfig(name="genealogy"))
    app = create_app(repository)        # any ASGI server can host this
    ServiceServer(app, port=8722).run()  # ... or the bundled one
"""

from .app import FederationService, Router, create_app
from .asgi import MAX_BODY_BYTES, Request, Response, read_body, send_response
from .repository import FederationRepository
from .serialization import json_safe, payload_to_query, rows_to_json, stats_to_dict
from .server import IDLE_TIMEOUT, ServerThread, ServiceServer
from .tenancy import DEMOS, Tenant, TenantConfig

__all__ = [
    "DEMOS",
    "FederationRepository",
    "FederationService",
    "IDLE_TIMEOUT",
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "Router",
    "ServerThread",
    "ServiceServer",
    "Tenant",
    "TenantConfig",
    "create_app",
    "json_safe",
    "payload_to_query",
    "read_body",
    "rows_to_json",
    "send_response",
    "stats_to_dict",
]
