"""A stdlib asyncio HTTP/1.1 server speaking ASGI to the service app.

The repo must serve without installing an ASGI server, so this module
implements just enough HTTP/1.1 — request head parsing,
``Content-Length`` bodies, keep-alive, buffered responses — to host
:class:`~repro.service.app.FederationService` from ``asyncio`` alone.
The app stays a standard ASGI callable: point ``uvicorn`` at it when
one is installed; run :class:`ServiceServer` when not.

Shutdown is cooperative: :meth:`ServiceServer.request_shutdown` (thread
safe) or the app's ``/admin/shutdown`` endpoint sets a stop event; the
accept loop closes, idle keep-alive connections notice within one poll
interval, the ASGI ``lifespan.shutdown`` handshake drains the
repository, and :meth:`run` returns.

:class:`ServerThread` hosts the whole thing on a background thread —
the shape the test-suite and the E-R5 load benchmark drive.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from .asgi import MAX_BODY_BYTES, Message, Response
from .app import FederationService

#: how often an idle keep-alive connection re-checks the stop event
_POLL = 0.25
#: idle keep-alive connections are dropped after this many seconds
IDLE_TIMEOUT = 30.0
#: largest request head (request line + headers) accepted
MAX_HEAD_BYTES = 64 * 1024


class _BadRequest(Exception):
    """The peer sent something that is not parseable HTTP/1.1."""


async def _read_head(
    reader: asyncio.StreamReader, stopping: asyncio.Event
) -> Optional[bytes]:
    """Read one request head, polling so shutdown interrupts idle waits.

    Returns ``None`` when the connection closed cleanly, shutdown was
    requested before a request arrived, or the peer idled out.
    """
    task = asyncio.ensure_future(reader.readuntil(b"\r\n\r\n"))
    waited = 0.0
    try:
        while True:
            try:
                return await asyncio.wait_for(asyncio.shield(task), timeout=_POLL)
            except asyncio.TimeoutError:
                waited += _POLL
                if stopping.is_set() or waited >= IDLE_TIMEOUT:
                    return None
            except asyncio.IncompleteReadError:
                return None
            except asyncio.LimitOverrunError as error:
                raise _BadRequest(f"request head too large: {error}") from None
    finally:
        if not task.done():
            task.cancel()
        try:
            await task
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass


def _parse_head(head: bytes) -> Tuple[str, str, bytes, List[Tuple[bytes, bytes]]]:
    """``(method, target, http_version, headers)`` from one request head."""
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError, IndexError):
        raise _BadRequest("malformed request line") from None
    headers: List[Tuple[bytes, bytes]] = []
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        if not _:
            raise _BadRequest(f"malformed header line {line!r}")
        headers.append(
            (name.strip().lower().encode("latin-1"), value.strip().encode("latin-1"))
        )
    return method, target, version.strip().encode("latin-1"), headers


class ServiceServer:
    """Host one ASGI app over stdlib asyncio HTTP/1.1."""

    def __init__(
        self,
        app: FederationService,
        host: str = "127.0.0.1",
        port: int = 8722,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        #: the port actually bound (differs from *port* when it was 0)
        self.bound_port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self.ready = threading.Event()
        if app.shutdown_callback is None:
            app.shutdown_callback = self.request_shutdown

    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Ask the server to stop; safe from any thread."""
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None and loop.is_running():
            loop.call_soon_threadsafe(stopping.set)

    def run(self) -> None:
        """Serve until shutdown is requested (blocks this thread)."""
        asyncio.run(self.serve())

    # ------------------------------------------------------------------
    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        await self._lifespan_message({"type": "lifespan.startup"})
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEAD_BYTES,
        )
        sockets = server.sockets or []
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.bound_port = sock.getsockname()[1]
                break
        self.ready.set()
        try:
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._lifespan_message({"type": "lifespan.shutdown"})
            self.ready.clear()

    async def _lifespan_message(self, message: Message) -> None:
        """Run one side of the ASGI lifespan handshake.

        Startup spawns the app's long-lived lifespan coroutine and waits
        for ``startup.complete``; shutdown feeds it the shutdown message
        and waits for the coroutine to finish (which drains and closes
        the repository).
        """
        if message["type"] == "lifespan.startup":
            inbox: "asyncio.Queue[Message]" = asyncio.Queue()
            await inbox.put(message)
            started = asyncio.Event()

            async def receive() -> Message:
                return await inbox.get()

            async def send(reply: Message) -> None:
                started.set()

            self._lifespan_inbox = inbox
            self._lifespan_task = asyncio.ensure_future(
                self.app(
                    {"type": "lifespan", "asgi": {"version": "3.0"}}, receive, send
                )
            )
            await started.wait()
        else:
            await self._lifespan_inbox.put(message)
            await self._lifespan_task

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._stopping is not None
        try:
            while True:
                try:
                    head = await _read_head(reader, self._stopping)
                except _BadRequest:
                    await self._write_response(
                        writer, Response.error(400, "malformed request"), close=True
                    )
                    return
                if head is None:
                    return
                keep_alive = await self._handle_request(head, reader, writer)
                if not keep_alive or self._stopping.is_set():
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            method, target, version, headers = _parse_head(head)
        except _BadRequest:
            await self._write_response(
                writer, Response.error(400, "malformed request"), close=True
            )
            return False
        header_map = {name: value for name, value in headers}
        length_raw = header_map.get(b"content-length", b"0") or b"0"
        try:
            content_length = int(length_raw)
        except ValueError:
            await self._write_response(
                writer, Response.error(400, "bad content-length"), close=True
            )
            return False
        if content_length > MAX_BODY_BYTES:
            await self._write_response(
                writer, Response.error(413, "request body too large"), close=True
            )
            return False
        try:
            body = (
                await reader.readexactly(content_length) if content_length else b""
            )
        except asyncio.IncompleteReadError:
            return False
        path, _, query_string = target.partition("?")
        connection = header_map.get(b"connection", b"").lower()
        keep_alive = (
            connection != b"close"
            if version == b"HTTP/1.1"
            else connection == b"keep-alive"
        )
        scope: Dict[str, Any] = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": version.decode("latin-1").removeprefix("HTTP/"),
            "method": method.upper(),
            "path": path,
            "raw_path": target.encode("latin-1"),
            "query_string": query_string.encode("latin-1"),
            "headers": headers,
            "server": (self.host, self.bound_port or self.port),
            "client": writer.get_extra_info("peername"),
        }
        response = await self._call_app(scope, body)
        await self._write_response(writer, response, close=not keep_alive)
        return keep_alive

    async def _call_app(self, scope: Dict[str, Any], body: bytes) -> Response:
        """Drive the ASGI app for one request, buffering its response."""
        messages: List[Message] = [
            {"type": "http.request", "body": body, "more_body": False}
        ]

        async def receive() -> Message:
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        status = 500
        headers: List[Tuple[bytes, bytes]] = []
        chunks: List[bytes] = []

        async def send(message: Message) -> None:
            nonlocal status, headers
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b"") or b"")

        try:
            await self.app(scope, receive, send)
        except Exception:  # app-level bug: keep the connection protocol-clean
            return Response.error(500, "internal server error")
        body_out = b"".join(chunks)
        content_type = "application/json"
        extra: List[Tuple[str, str]] = []
        for name, value in headers:
            if name.lower() == b"content-type":
                content_type = value.decode("latin-1")
            elif name.lower() != b"content-length":
                extra.append((name.decode("latin-1"), value.decode("latin-1")))
        return Response(
            status=status,
            body=body_out,
            content_type=content_type,
            headers=tuple(extra),
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, close: bool
    ) -> None:
        head_lines = [f"HTTP/1.1 {response.status} {_reason(response.status)}"]
        for name, value in response.asgi_headers():
            head_lines.append(
                f"{name.decode('latin-1')}: {value.decode('latin-1')}"
            )
        head_lines.append(f"connection: {'close' if close else 'keep-alive'}")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)
        await writer.drain()


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


class ServerThread:
    """Run a :class:`ServiceServer` on a daemon thread (tests, benchmarks).

    ::

        with ServerThread(app, port=0) as server:
            ...  # http requests against 127.0.0.1:server.port
    """

    def __init__(
        self, app: FederationService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = ServiceServer(app, host=host, port=port)
        self.thread = threading.Thread(
            target=self.server.run, name="service-server", daemon=True
        )

    @property
    def port(self) -> int:
        assert self.server.bound_port is not None
        return self.server.bound_port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self.thread.start()
        if not self.server.ready.wait(timeout=timeout):
            raise RuntimeError("service server did not become ready")
        return self

    def stop(self, timeout: float = 15.0) -> None:
        self.server.request_shutdown()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():  # pragma: no cover - diagnostics only
            raise RuntimeError("service server did not stop in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
