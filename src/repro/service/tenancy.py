"""Tenancy: one isolated federation per tenant, many tenants per loop.

A *tenant* is one complete federation — its own component databases,
integrated schema, :class:`~repro.runtime.cache.ExtentCache`, generation
state and optional persistent cache file — wrapped with the per-tenant
admission gate the service's fairness promise needs.  Tenants share
**nothing** stateful: the only common resource is the
:class:`~repro.runtime.async_executor.EventLoopThread` all async-mode
runtimes multiplex their agent scans on, which carries no per-tenant
data.  A ``bump_generation`` or component write in one tenant therefore
cannot invalidate or serve stale granules to another.

:class:`TenantConfig` describes how to build a tenant: either a named
demo federation (``genealogy`` / ``cluster``) or component schema files
plus an assertion DSL file and an optional JSON instance file — the
same source shapes the CLI ``query`` subcommand accepts.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.session import FederationSession
from ..errors import ServiceError
from ..federation.query import FederatedQuery
from ..model.database import ObjectDatabase
from ..model.textio import parse_schema_file
from ..runtime import (
    AsyncInProcessTransport,
    AsyncSimulatedNetworkTransport,
    EventLoopThread,
    FaultProfile,
    FederationRuntime,
    InProcessTransport,
    RuntimePolicy,
    RuntimeStats,
    ShardPlan,
    SimulatedNetworkTransport,
)

#: demo federations `TenantConfig.demo` accepts
DEMOS = ("genealogy", "cluster")


@dataclasses.dataclass
class TenantConfig:
    """Everything needed to build one tenant's federation.

    *max_inflight* is the tenant's **fairness cap**: how many of its
    HTTP queries may execute concurrently.  A tenant flooding the
    service queues behind its own cap instead of starving its
    neighbours' share of the shared scan loop.  The runtime-level scan
    window is *scan_inflight* (the async executor's semaphore).
    """

    name: str
    demo: Optional[str] = "genealogy"
    #: component schema files (alternative to *demo*; needs *assertions*)
    schemas: Tuple[str, ...] = ()
    assertions: Optional[str] = None
    #: JSON instance file: ``{schema: {class: [attribute maps]}}``
    data: Optional[str] = None
    #: a disk-backed federation: a directory with a ``federation.json``
    #: manifest naming sqlite/CSV/JSON sources (alternative to *demo*)
    source_dir: Optional[str] = None
    #: execution engine: ``threaded``, ``async`` (shared loop) or
    #: ``multiprocess`` (spawn-based worker pool, columnar extents)
    mode: str = "async"
    max_inflight: int = 8
    scan_inflight: int = 64
    max_workers: int = 8
    shards: int = 0
    shard_kind: str = "hash"
    cache_path: Optional[str] = None
    #: simulated per-agent-call latency in milliseconds (demos, benchmarks)
    latency_ms: float = 0.0
    #: run the query planner (prune + coalesce + hint pushdown) per query
    plan: bool = True
    #: patch stale cached extents from component delta feeds instead of
    #: rescanning them (``deltas=false`` restores the bump baseline)
    deltas: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("a tenant needs a non-empty name")
        if (self.schemas or self.source_dir) and self.demo in DEMOS:
            self.demo = None
        if self.schemas and self.source_dir:
            raise ServiceError(
                f"tenant {self.name!r}: schema files and source_dir are exclusive"
            )
        if not self.schemas and not self.source_dir and self.demo not in DEMOS:
            raise ServiceError(
                f"tenant {self.name!r} needs demo in {DEMOS}, schema files or "
                f"a source_dir, got demo={self.demo!r}"
            )
        if self.schemas and not self.assertions:
            raise ServiceError(
                f"tenant {self.name!r} uses schema files and needs an "
                "assertion file"
            )
        if self.max_inflight < 1:
            raise ServiceError(
                f"tenant {self.name!r} max_inflight must be >= 1, "
                f"got {self.max_inflight}"
            )


def _demo_databases(config: TenantConfig) -> Tuple[str, Dict[str, ObjectDatabase]]:
    if config.demo == "genealogy":
        from ..workloads import genealogy

        _, _, text, databases = genealogy()
        return text, databases
    from ..workloads import federated_cluster

    _, text, databases = federated_cluster(schemas=4, per_class=8)
    return text, databases


def _file_databases(config: TenantConfig) -> Tuple[str, Dict[str, ObjectDatabase]]:
    rows_by_schema: Mapping[str, Mapping[str, Sequence[Mapping[str, Any]]]] = {}
    if config.data:
        with open(config.data, "r", encoding="utf-8") as handle:
            rows_by_schema = json.load(handle)
    databases: Dict[str, ObjectDatabase] = {}
    for path in config.schemas:
        schema = parse_schema_file(path)
        database = ObjectDatabase(schema, agent=f"host-{schema.name}")
        for class_name, rows in rows_by_schema.get(schema.name, {}).items():
            database.insert_many(class_name, rows)
        databases[schema.name] = database
    assert config.assertions is not None  # __post_init__ guarantees it
    with open(config.assertions, "r", encoding="utf-8") as handle:
        text = handle.read()
    return text, databases


def build_session(config: TenantConfig) -> FederationSession:
    """Build and integrate one tenant's federation from its config."""
    if config.source_dir:
        from ..sources import load_source_federation

        text, databases = load_source_federation(config.source_dir)
    elif config.schemas:
        text, databases = _file_databases(config)  # type: ignore[assignment]
    else:
        text, databases = _demo_databases(config)  # type: ignore[assignment]
    session = FederationSession()
    for schema_name, database in databases.items():
        session.add_source(database, agent_name=f"agent-{schema_name}")
    session.declare(text)
    session.integrate()
    return session


def attach_runtime(
    session: FederationSession,
    config: TenantConfig,
    loop: Optional[EventLoopThread] = None,
) -> FederationRuntime:
    """Attach this tenant's runtime, multiplexed on the shared *loop*.

    Mirrors the CLI's transport construction: in-process agents, with a
    simulated network wrapped around them when the config injects
    latency.  Async-mode tenants hand their executor the shared loop;
    threaded and multiprocess tenants keep private pools (the runtime
    splices the process-pool hop in for multiprocess mode).
    """
    fsm = session.fsm
    policy = RuntimePolicy(
        max_workers=max(1, config.max_workers),
        max_inflight=max(1, config.scan_inflight),
    )
    profile = FaultProfile(latency=config.latency_ms / 1000.0)
    transport: Any
    if config.mode == "async":
        transport = AsyncInProcessTransport(fsm._agents, fsm._schema_host)
        if config.latency_ms > 0:
            transport = AsyncSimulatedNetworkTransport(transport, profile)
    else:
        transport = InProcessTransport(fsm._agents, fsm._schema_host)
        if config.latency_ms > 0:
            transport = SimulatedNetworkTransport(transport, profile)
    shard_plan = (
        ShardPlan(config.shards, config.shard_kind) if config.shards > 0 else None
    )
    runtime = FederationRuntime(
        transport=transport,
        policy=policy,
        mode=config.mode,
        shard_plan=shard_plan,
        cache_path=config.cache_path,
        loop=loop if config.mode == "async" else None,
        plan=config.plan,
        deltas=config.deltas,
    )
    return fsm.use_runtime(runtime=runtime, plan=config.plan)


class Tenant:
    """One tenant: an integrated session, its runtime, its fairness gate."""

    def __init__(
        self,
        config: TenantConfig,
        session: FederationSession,
        runtime: FederationRuntime,
    ) -> None:
        self.config = config
        self.session = session
        self.runtime = runtime
        self._gate = threading.BoundedSemaphore(config.max_inflight)
        self._meter = threading.Lock()
        self.queries = 0
        self.inflight = 0
        self.peak_inflight = 0

    @property
    def name(self) -> str:
        return self.config.name

    @classmethod
    def build(
        cls, config: TenantConfig, loop: Optional[EventLoopThread] = None
    ) -> "Tenant":
        session = build_session(config)
        runtime = attach_runtime(session, config, loop)
        return cls(config, session, runtime)

    # ------------------------------------------------------------------
    def query(
        self, query: FederatedQuery, appendix_b: bool = False
    ) -> Tuple[List[Dict[str, Any]], Optional[RuntimeStats], List[str]]:
        """Run one federated query under the tenant's admission gate.

        Returns ``(rows, per-query stats delta, drained warnings)``.
        The gate bounds this tenant's concurrent queries at
        ``config.max_inflight``; excess requests queue here rather than
        crowd the shared scan loop.
        """
        with self._gate:
            with self._meter:
                self.queries += 1
                self.inflight += 1
                self.peak_inflight = max(self.peak_inflight, self.inflight)
            try:
                fsm = self.session.fsm
                if appendix_b:
                    before = self.runtime.stats()
                    with self.runtime.timer("query"):
                        rows = query.run(fsm.appendix_b(prefetch=query))
                    fsm.last_query_stats = self.runtime.stats() - before
                    delta: Optional[RuntimeStats] = fsm.last_query_stats
                else:
                    rows = fsm.query(query)
                    delta = fsm.last_query_stats
                warnings = self.runtime.drain_warnings()
                return rows, delta, warnings
            finally:
                with self._meter:
                    self.inflight -= 1

    # ------------------------------------------------------------------
    def stats(self) -> RuntimeStats:
        return self.runtime.stats()

    def invalidate(
        self,
        agent: Optional[str] = None,
        schema: Optional[str] = None,
        class_name: Optional[str] = None,
    ) -> int:
        return self.runtime.invalidate(agent, schema, class_name)

    def bump_generation(self) -> int:
        return self.runtime.bump_generation()

    def describe(self) -> Dict[str, Any]:
        """A health-endpoint summary of this tenant."""
        return {
            "mode": self.config.mode,
            "schemas": sorted(self.session.fsm.schema_names()),
            "integrated": self.session.integrated is not None,
            "queries": self.queries,
            "inflight": self.inflight,
            "peak_inflight": self.peak_inflight,
            "max_inflight": self.config.max_inflight,
            "shards": self.config.shards,
            "cache_persistent": self.runtime.cache.persistent,
        }

    def close(self) -> None:
        """Release the tenant's runtime (idempotent)."""
        self.runtime.close()
