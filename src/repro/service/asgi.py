"""Minimal ASGI 3 framing: request/response primitives, no dependencies.

The federation service is an ordinary ASGI application — runnable under
``uvicorn repro.service:create_default_app`` style factories or any
other ASGI server — but the repo must serve without installing one, so
this module keeps the framing tiny and the bundled
:mod:`~repro.service.server` speaks the same protocol from the stdlib.

Only what the service needs is implemented: buffered request bodies
(federated queries are small JSON documents), buffered responses, and
the ``lifespan`` handshake for startup/shutdown hooks.
"""

from __future__ import annotations

import json
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from ..errors import PayloadError
from .serialization import json_safe

#: ASGI callable pieces, named for readability in signatures
Scope = Dict[str, Any]
Message = Dict[str, Any]
Receive = Callable[[], Awaitable[Message]]
Send = Callable[[Message], Awaitable[None]]

#: largest request body the service accepts (federated queries are small)
MAX_BODY_BYTES = 1 << 20


class Request:
    """One buffered HTTP request, decoded from an ASGI scope + body."""

    def __init__(self, scope: Scope, body: bytes) -> None:
        self.scope = scope
        self.method: str = scope.get("method", "GET").upper()
        self.path: str = scope.get("path", "/")
        self.body = body
        self.headers: Dict[str, str] = {}
        for name, value in scope.get("headers", ()):  # latest value wins
            self.headers[bytes(name).decode("latin-1").lower()] = bytes(
                value
            ).decode("latin-1")
        query_string = scope.get("query_string", b"") or b""
        self.query: Dict[str, List[str]] = parse_qs(
            query_string.decode("latin-1"), keep_blank_values=True
        )

    def query_param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        values = self.query.get(name)
        return values[-1] if values else default

    def json(self) -> Any:
        """The decoded JSON body; ``None`` for an empty body.

        Raises :class:`~repro.errors.PayloadError` on malformed JSON —
        the app maps it to a 400 response.
        """
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise PayloadError(f"request body is not valid JSON: {error}") from None


class Response:
    """One buffered HTTP response the app hands back to the protocol."""

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        """A JSON response; *payload* is coerced through :func:`json_safe`."""
        body = json.dumps(json_safe(payload), indent=2).encode("utf-8") + b"\n"
        return cls(status=status, body=body)

    @classmethod
    def error(cls, status: int, message: str, **extra: Any) -> "Response":
        """The service's uniform error document."""
        return cls.json({"error": message, "status": status, **extra}, status=status)

    def asgi_headers(self) -> List[Tuple[bytes, bytes]]:
        pairs = [
            (b"content-type", self.content_type.encode("latin-1")),
            (b"content-length", str(len(self.body)).encode("latin-1")),
        ]
        for name, value in self.headers:
            pairs.append((name.encode("latin-1"), value.encode("latin-1")))
        return pairs


async def read_body(receive: Receive, limit: int = MAX_BODY_BYTES) -> bytes:
    """Drain ``http.request`` messages into one buffered body."""
    chunks: List[bytes] = []
    total = 0
    while True:
        message = await receive()
        kind = message.get("type")
        if kind == "http.disconnect":
            break
        if kind != "http.request":
            continue
        chunk = message.get("body", b"") or b""
        total += len(chunk)
        if total > limit:
            raise PayloadError(f"request body exceeds {limit} bytes")
        chunks.append(chunk)
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


async def send_response(send: Send, response: Response) -> None:
    """Emit one buffered :class:`Response` as ASGI messages."""
    await send(
        {
            "type": "http.response.start",
            "status": response.status,
            "headers": response.asgi_headers(),
        }
    )
    await send(
        {"type": "http.response.body", "body": response.body, "more_body": False}
    )
