"""The federation query service: routes → repository → runtime.

:class:`FederationService` is a plain ASGI 3 application.  Run it under
any ASGI server, or under the bundled stdlib server via
``python -m repro serve``::

    app = create_app(repository)
    # uvicorn path (if installed):  uvicorn.run(app)
    # bundled path:                 ServiceServer(app).run()

Endpoints::

    GET  /healthz                            liveness + tenant census
    GET  /tenants                            tenant ids
    POST /tenants/{tenant}/query             run a federated query
    GET  /tenants/{tenant}/stats             cumulative runtime stats
    POST /tenants/{tenant}/cache/invalidate  drop cached extents
    POST /tenants/{tenant}/cache/bump        advance the cache generation
    POST /admin/shutdown                     graceful stop (when enabled)

Route handlers stay thin: decode, call one
:class:`~repro.service.repository.FederationRepository` method,
serialize.  Blocking federation work runs on the server's default
thread-pool executor so the HTTP loop keeps accepting connections while
queries fan out on the shared scan loop.
"""

from __future__ import annotations

import asyncio
import re
from typing import Any, Awaitable, Callable, Dict, List, Optional, Pattern, Tuple

from ..errors import (
    PayloadError,
    QueryError,
    PartialResultError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    UnknownTenantError,
)
from .asgi import Receive, Request, Response, Scope, Send, read_body, send_response
from .repository import FederationRepository

Handler = Callable[["FederationService", Request, Dict[str, str]], Awaitable[Response]]

_PARAM_RE = re.compile(r"\{(\w+)\}")


def _compile(pattern: str) -> Pattern[str]:
    """``/tenants/{tenant}/stats`` → anchored regex with named groups."""
    regex = _PARAM_RE.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)", pattern)
    return re.compile(f"^{regex}$")


class Router:
    """A tiny method+path table with ``{param}`` captures."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Pattern[str], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(), _compile(pattern), handler))

    def match(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], List[str]]:
        """Resolve to ``(handler, params, allowed_methods)``.

        A ``(None, {}, [...])`` result with a non-empty method list is a
        405; with an empty list it is a 404.
        """
        allowed: List[str] = []
        for route_method, regex, handler in self._routes:
            match = regex.match(path)
            if not match:
                continue
            if route_method == method:
                return handler, match.groupdict(), []
            allowed.append(route_method)
        return None, {}, sorted(set(allowed))


# ----------------------------------------------------------------------
# handlers — thin by design: decode, one repository call, serialize
# ----------------------------------------------------------------------
async def _healthz(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    return Response.json(service.repository.health())


async def _tenants(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    return Response.json({"tenants": service.repository.tenant_ids()})


async def _query(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    payload = request.json()
    result = await service.offload(
        service.repository.query, params["tenant"], payload
    )
    return Response.json(result)


async def _stats(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    result = await service.offload(service.repository.stats, params["tenant"])
    return Response.json(result)


async def _invalidate(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    payload = request.json()
    result = await service.offload(
        service.repository.invalidate, params["tenant"], payload
    )
    return Response.json(result)


async def _bump(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    result = await service.offload(service.repository.bump, params["tenant"])
    return Response.json(result)


async def _shutdown(
    service: "FederationService", request: Request, params: Dict[str, str]
) -> Response:
    if not service.allow_shutdown:
        return Response.error(403, "remote shutdown is disabled")
    service.request_shutdown()
    return Response.json({"status": "shutting down"}, status=202)


class FederationService:
    """The ASGI application over one :class:`FederationRepository`.

    *allow_shutdown* gates ``POST /admin/shutdown`` (off by default; CI
    and tests enable it for deterministic teardown).  *shutdown_callback*
    is invoked — thread-safely, at most once per request — when a
    permitted shutdown request arrives; the bundled server wires it to
    its own stop event.
    """

    def __init__(
        self,
        repository: FederationRepository,
        allow_shutdown: bool = False,
        shutdown_callback: Optional[Callable[[], None]] = None,
    ) -> None:
        self.repository = repository
        self.allow_shutdown = allow_shutdown
        self.shutdown_callback = shutdown_callback
        self.router = Router()
        self.router.add("GET", "/healthz", _healthz)
        self.router.add("GET", "/tenants", _tenants)
        self.router.add("POST", "/tenants/{tenant}/query", _query)
        self.router.add("GET", "/tenants/{tenant}/stats", _stats)
        self.router.add("POST", "/tenants/{tenant}/cache/invalidate", _invalidate)
        self.router.add("POST", "/tenants/{tenant}/cache/bump", _bump)
        self.router.add("POST", "/admin/shutdown", _shutdown)

    # ------------------------------------------------------------------
    async def offload(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run blocking federation work off the HTTP event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    def request_shutdown(self) -> None:
        if self.shutdown_callback is not None:
            self.shutdown_callback()

    # ------------------------------------------------------------------
    async def __call__(self, scope: Scope, receive: Receive, send: Send) -> None:
        kind = scope.get("type")
        if kind == "lifespan":
            await self._lifespan(receive, send)
            return
        if kind != "http":  # pragma: no cover - websockets etc.
            raise RuntimeError(f"unsupported ASGI scope type {kind!r}")
        response = await self._dispatch(scope, receive)
        await send_response(send, response)

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        """The ASGI lifespan handshake: close the repository on shutdown."""
        while True:
            message = await receive()
            kind = message.get("type")
            if kind == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif kind == "lifespan.shutdown":
                await self.offload(self.repository.close)
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _dispatch(self, scope: Scope, receive: Receive) -> Response:
        method = scope.get("method", "GET").upper()
        path = scope.get("path", "/")
        handler, params, allowed = self.router.match(method, path)
        if handler is None:
            if allowed:
                return Response.error(
                    405, f"method {method} not allowed for {path}", allowed=allowed
                )
            return Response.error(404, f"no route for {path}")
        try:
            body = await read_body(receive)
            request = Request(scope, body)
            return await handler(self, request, params)
        except UnknownTenantError as error:
            return Response.error(404, str(error), tenant=error.tenant_id)
        except (PayloadError, QueryError) as error:
            return Response.error(400, str(error))
        except ServiceClosedError as error:
            return Response.error(503, str(error))
        except PartialResultError as error:
            return Response.error(
                502, str(error), failures=[str(f) for f in error.failures]
            )
        except (ServiceError, ReproError) as error:
            return Response.error(500, f"{type(error).__name__}: {error}")
        except Exception as error:  # pragma: no cover - defensive
            return Response.error(500, f"internal error: {type(error).__name__}")


def create_app(
    repository: FederationRepository,
    allow_shutdown: bool = False,
    shutdown_callback: Optional[Callable[[], None]] = None,
) -> FederationService:
    """Build the federation query service over *repository*."""
    return FederationService(
        repository,
        allow_shutdown=allow_shutdown,
        shutdown_callback=shutdown_callback,
    )
