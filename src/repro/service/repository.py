"""FederationRepository: every tenant, one scan loop, one lifecycle.

The repository is the service's domain layer.  Route handlers stay
thin — decode the request, call one repository method, serialize the
result — while the repository owns:

* the **tenant registry**: isolated :class:`~repro.service.tenancy.Tenant`
  federations keyed by id;
* the **shared scan loop**: a single
  :class:`~repro.runtime.async_executor.EventLoopThread` every
  async-mode tenant's executor borrows, so N tenants cost one event
  loop thread instead of N;
* the **lifecycle**: admission (a closed repository refuses new
  queries), in-flight draining, and the idempotent close chain that
  releases each tenant's runtime and finally the loop itself.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..errors import ServiceClosedError, ServiceError, UnknownTenantError
from ..runtime import EventLoopThread
from .serialization import payload_to_query, rows_to_json, stats_to_dict
from .tenancy import Tenant, TenantConfig


class FederationRepository:
    """Owns the tenants, the shared scan loop, and graceful shutdown."""

    def __init__(self, drain_timeout: float = 10.0) -> None:
        self.loop = EventLoopThread()
        self.drain_timeout = drain_timeout
        self._tenants: Dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._inflight = 0
        self._closed = False
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # tenant registry
    # ------------------------------------------------------------------
    def add_tenant(self, config: TenantConfig) -> Tenant:
        """Build one tenant's federation and register it.

        Async-mode tenants multiplex their agent scans on the
        repository's shared loop; the repository (not the tenant)
        closes that loop.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("the repository is closed")
            if config.name in self._tenants:
                raise ServiceError(f"tenant {config.name!r} already exists")
        tenant = Tenant.build(config, loop=self.loop)
        with self._lock:
            if self._closed:  # closed while building: release immediately
                tenant.close()
                raise ServiceClosedError("the repository is closed")
            self._tenants[config.name] = tenant
        return tenant

    def tenant(self, tenant_id: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise UnknownTenantError(tenant_id) from None

    def tenant_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # admission + drain accounting
    # ------------------------------------------------------------------
    def _enter(self) -> None:
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "the service is shutting down and no longer admits queries"
                )
            self._inflight += 1

    def _leave(self) -> None:
        with self._drained:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.notify_all()

    # ------------------------------------------------------------------
    # operations (one per endpoint)
    # ------------------------------------------------------------------
    def query(self, tenant_id: str, payload: Any) -> Dict[str, Any]:
        """Run one federated query for *tenant_id*; the full wire answer.

        The response carries the rows, the per-query autonomy
        accounting (which agents were scanned, how often, how long each
        runtime phase took) and any warnings the runtime drained —
        everything the CLI's ``--stats`` shows, as JSON.  Per-request
        stats are exact when the tenant runs one query at a time and
        approximate under concurrency (deltas of a shared counter set).
        """
        tenant = self.tenant(tenant_id)
        query, appendix_b = payload_to_query(payload)
        self._enter()
        try:
            started = time.perf_counter()
            rows, delta, warnings = tenant.query(query, appendix_b=appendix_b)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        finally:
            self._leave()
        response: Dict[str, Any] = {
            "tenant": tenant_id,
            "query": str(query),
            "evaluator": "appendix_b" if appendix_b else "bottom_up",
            "rows": rows_to_json(rows),
            "count": len(rows),
            "elapsed_ms": round(elapsed_ms, 3),
        }
        if delta is not None:
            response["stats"] = stats_to_dict(delta)
        if warnings:
            response["warnings"] = list(warnings)
        return response

    def stats(self, tenant_id: str) -> Dict[str, Any]:
        """Cumulative runtime stats + tenant summary for one tenant."""
        tenant = self.tenant(tenant_id)
        return {
            "tenant": tenant_id,
            "tenant_info": tenant.describe(),
            "stats": stats_to_dict(tenant.stats()),
        }

    def invalidate(self, tenant_id: str, payload: Any) -> Dict[str, Any]:
        """Drop cached extents for one tenant (optionally scoped)."""
        tenant = self.tenant(tenant_id)
        payload = payload or {}
        if not isinstance(payload, dict):
            raise ServiceError("cache/invalidate expects a JSON object body")
        dropped = tenant.invalidate(
            agent=payload.get("agent"),
            schema=payload.get("schema"),
            class_name=payload.get("class") or payload.get("class_name"),
        )
        return {"tenant": tenant_id, "dropped": dropped}

    def bump(self, tenant_id: str) -> Dict[str, Any]:
        """Advance one tenant's cache generation (staleness fence)."""
        tenant = self.tenant(tenant_id)
        return {"tenant": tenant_id, "generation": tenant.bump_generation()}

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document: liveness plus a tenant census."""
        with self._lock:
            tenants = dict(self._tenants)
            inflight = self._inflight
            closed = self._closed
        return {
            "status": "closing" if closed else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "inflight": inflight,
            "loop_alive": self.loop.alive,
            "tenants": {name: tenant.describe() for name, tenant in tenants.items()},
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful shutdown: refuse, drain, release (idempotent).

        New queries are refused immediately (:class:`ServiceClosedError`),
        in-flight ones get up to *drain_timeout* seconds to finish, then
        every tenant's runtime is closed — flushing persistent extent
        stores — and finally the shared scan loop stops.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = time.monotonic() + (
            self.drain_timeout if drain_timeout is None else drain_timeout
        )
        with self._drained:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._drained.wait(timeout=remaining):
                    break
        with self._lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            tenant.close()
        self.loop.close()
