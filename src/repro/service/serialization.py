"""Wire serialization: runtime objects to JSON-safe structures.

One vocabulary serves every machine-readable surface: the HTTP
endpoints of the federation service and the CLI's ``query --json``
output share :func:`stats_to_dict`, so a dashboard scraping
``GET /tenants/{id}/stats`` and a script parsing CLI output read the
same shape.  :func:`json_safe` flattens the model types a federated
answer row can carry — :class:`~repro.model.oids.OID` values become
their dotted string form, multivalued attributes (frozensets) become
sorted lists — without the service layer knowing the model's internals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from ..errors import QueryError
from ..federation.query import FederatedQuery
from ..model.oids import OID
from ..runtime.metrics import RuntimeStats


def json_safe(value: Any) -> Any:
    """Recursively coerce *value* into JSON-serializable primitives.

    OIDs render as their dotted string form; sets (multivalued
    attribute values) become sorted lists so output is deterministic;
    anything else unknown falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, OID):
        return str(value)
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return str(value)


def rows_to_json(rows: Any) -> List[Dict[str, Any]]:
    """Federated answer rows as JSON-safe dicts (order preserved)."""
    return [json_safe(row) for row in rows]


def stats_to_dict(stats: RuntimeStats) -> Dict[str, Any]:
    """A :class:`RuntimeStats` snapshot (or delta) as a JSON document.

    The shape mirrors :meth:`RuntimeStats.describe` — counters, the
    per-agent scan histogram, the granules evicted by delta-feed
    fallbacks, missing shard endpoints and phase timers (milliseconds)
    — with keys sorted for stable output.
    """
    return {
        "counters": {name: stats.counters[name] for name in sorted(stats.counters)},
        "agent_scans": {
            agent: stats.agent_scans[agent] for agent in sorted(stats.agent_scans)
        },
        "fallback_invalidations": {
            granule: stats.fallback_invalidations[granule]
            for granule in sorted(stats.fallback_invalidations)
        },
        "missing_shards": {
            endpoint: stats.missing_shards[endpoint]
            for endpoint in sorted(stats.missing_shards)
        },
        "timers": {
            phase: {
                "count": timer.count,
                "total_ms": round(timer.total * 1000.0, 3),
                "mean_ms": round(timer.mean * 1000.0, 3),
                "max_ms": round(timer.max * 1000.0, 3),
            }
            for phase, timer in sorted(stats.timers.items())
        },
    }


def payload_to_query(payload: Any) -> Tuple[FederatedQuery, bool]:
    """Decode a query-endpoint body into ``(query, appendix_b)``.

    Accepts the shapes :meth:`FederatedQuery.from_payload` understands
    plus an optional boolean ``appendix_b`` switching the tenant to the
    top-down evaluator for this request.
    """
    if not isinstance(payload, Mapping):
        raise QueryError("the query endpoint expects a JSON object body")
    appendix_b = payload.get("appendix_b", False)
    if not isinstance(appendix_b, bool):
        raise QueryError("payload key 'appendix_b' must be a boolean")
    return FederatedQuery.from_payload(payload), appendix_b
