"""Exception hierarchy shared by every subpackage.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle anything the integration pipeline
signals.  Subpackages refine the hierarchy:

* :class:`ModelError` — malformed schemas, classes, instances or OIDs.
* :class:`LogicError` — ill-formed terms, rules or substitutions.
* :class:`AssertionSpecError` — invalid correspondence assertions.
* :class:`IntegrationError` — failures while applying the integration
  principles or running the integration algorithms.
* :class:`FederationError` — agent registration, data-mapping and query
  evaluation failures.
* :class:`ServiceError` — federation query service failures (unknown
  tenants, malformed request payloads, shutdown refusals).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ModelError(ReproError):
    """A schema, class, attribute, instance or OID is malformed."""


class UnknownClassError(ModelError):
    """A class name was referenced that the schema does not define."""

    def __init__(self, class_name: str, schema_name: str = "") -> None:
        where = f" in schema {schema_name!r}" if schema_name else ""
        super().__init__(f"unknown class {class_name!r}{where}")
        self.class_name = class_name
        self.schema_name = schema_name


class UnknownAttributeError(ModelError):
    """An attribute name was referenced that its class does not define."""

    def __init__(self, attribute: str, class_name: str) -> None:
        super().__init__(
            f"class {class_name!r} has no attribute or aggregation {attribute!r}"
        )
        self.attribute = attribute
        self.class_name = class_name


class DuplicateDefinitionError(ModelError):
    """A class, attribute or aggregation function was defined twice."""


class CycleError(ModelError):
    """The is-a hierarchy of a schema contains a cycle."""


class InstanceError(ModelError):
    """An object instance does not conform to its class type."""


class OIDError(ModelError):
    """A global object identifier is malformed."""


class LogicError(ReproError):
    """A term, atom, rule or substitution is ill-formed."""


class UnificationError(LogicError):
    """Two terms could not be unified."""


class SafetyError(LogicError):
    """A generated rule is not safe / range-restricted / allowed."""


class EvaluationError(LogicError):
    """Rule evaluation failed (unknown predicate, unstratifiable negation...)."""


class AssertionSpecError(ReproError):
    """A correspondence assertion is invalid or inconsistent."""


class PathError(AssertionSpecError):
    """A dotted path does not resolve against its schema."""


class AssertionParseError(AssertionSpecError):
    """The textual assertion DSL could not be parsed."""

    def __init__(self, message: str, line_no: int = 0, line: str = "") -> None:
        prefix = f"line {line_no}: " if line_no else ""
        suffix = f" (in {line!r})" if line else ""
        super().__init__(f"{prefix}{message}{suffix}")
        self.line_no = line_no
        self.line = line


class AssertionConflictError(AssertionSpecError):
    """Two assertions about the same pair of concepts contradict each other."""


class IntegrationError(ReproError):
    """An integration principle or algorithm failed."""


class DecompositionError(IntegrationError):
    """A derivation assertion could not be decomposed (Principle 5 pre-step)."""


class LatticeError(IntegrationError):
    """A cardinality constraint is not a member of the constraint lattice."""


class FederationError(ReproError):
    """Agent registration, data mapping or federated query processing failed."""


class RegistrationError(FederationError):
    """A component database or agent registration is invalid."""


class MappingError(FederationError):
    """A data mapping is malformed or cannot translate a value."""


class QueryError(FederationError):
    """A global query is malformed or references unknown concepts."""


class RuntimeFederationError(FederationError):
    """The federation runtime could not complete an agent operation."""


class TransportError(RuntimeFederationError):
    """An agent call failed in transit (network fault, dropped reply)."""


class AgentTimeoutError(TransportError):
    """An agent call exceeded the per-call timeout budget."""

    def __init__(self, agent: str, timeout: float) -> None:
        super().__init__(f"agent {agent!r} timed out after {timeout:.3f}s")
        self.agent = agent
        self.timeout = timeout


class SourceError(TransportError):
    """A disk-backed component source failed while serving a scan.

    Subclassing :class:`TransportError` deliberately puts source faults
    on the executor's retry / circuit-breaker / lost-granule path: a
    locked sqlite file or a truncated CSV row degrades exactly like a
    dropped network reply — per granule, typed, never silent.
    """


class SourceUnavailableError(SourceError):
    """The source container cannot be opened (missing, locked, corrupt)."""


class SourceFormatError(SourceError):
    """A row or record inside the source does not match its declared shape."""

    def __init__(self, source: str, relation: str, detail: str) -> None:
        super().__init__(f"source {source!r}, relation {relation!r}: {detail}")
        self.source = source
        self.relation = relation
        self.detail = detail


class SourceConfigError(FederationError):
    """A source manifest or adapter specification is invalid."""


class CircuitOpenError(RuntimeFederationError):
    """An agent's circuit breaker is open; calls fast-fail until reset."""

    def __init__(self, agent: str) -> None:
        super().__init__(f"agent {agent!r} circuit is open (persistent failures)")
        self.agent = agent


class ShardMergeError(RuntimeFederationError):
    """A shard slice carried a value its merge cannot key by OID.

    The shard merge deduplicates overlapping granules on each
    instance's ``.oid``; a value without one cannot be keyed, and
    falling back to hashing the object itself would silently drop
    distinct-but-equal facts (or crash on unhashable values), so the
    merge refuses it loudly instead.
    """

    def __init__(self, op: str, value: object) -> None:
        super().__init__(
            f"cannot merge shard slices for op {op!r}: "
            f"value {value!r} of type {type(value).__name__} has no .oid "
            f"to deduplicate on"
        )
        self.op = op
        self.value = value


class PartialResultError(RuntimeFederationError):
    """A fan-out failed and the runtime policy forbids partial answers."""

    def __init__(self, message: str, failures=()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


class ServiceError(ReproError):
    """The federation query service could not satisfy a request."""


class UnknownTenantError(ServiceError):
    """A request named a tenant the service does not host."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant {tenant_id!r}")
        self.tenant_id = tenant_id


class ServiceClosedError(ServiceError):
    """The service is shutting down and no longer admits requests."""


class PayloadError(ServiceError):
    """An HTTP request body is not the JSON shape an endpoint expects."""
