"""Principle 3: integration of intersection assertions (§5, Example 8).

``S1.A ∩ S2.B`` produces *virtual classes* defined by rules — objects
that can be referenced "only by computing the body classes of rules
defining them":

* ``IS(S1.A)`` and ``IS(S2.B)`` are inserted (full local copies);
* ``IS_AB`` (the common part), ``A_only`` (``IS_A-``) and ``B_only``
  (``IS_B-``) are inserted as virtual classes, defined by::

      <x: IS_AB>   ⇐ <x: IS(S1.A)>, <y: IS(S2.B)>, y = x
      <x: A_only>  ⇐ <x: IS(S1.A)>, ¬<x: IS_AB>
      <x: B_only>  ⇐ <x: IS(S2.B)>, ¬<x: IS_AB>

  The paper's ``y = x`` holds "in terms of data mapping" — cross-database
  object identity is not literal OID equality, so the generated rule uses
  the explicit ``same_object(x, y)`` predicate, whose facts the
  federation layer derives from its data mappings (see
  :mod:`repro.federation.mappings`).  DESIGN.md records this substitution.

* member correspondences yield integrated attributes on ``IS_AB`` whose
  value sets are defined over ``re(S_i, IS_attr)`` — unions for
  ≡/⊇/⊆, an :class:`~repro.integration.aif.AIF` application for ∩
  (Example 8's ``income_study_support``), concatenation for α, the more
  specific side for β;
* aggregation pairs merge like Principle 1, except ℵ between
  intersecting classes is an error (the paper's own ``case f ℵ g:
  report an error``).
"""

from __future__ import annotations

from typing import Optional

from ..assertions.assertion_set import AssertionSet
from ..assertions.class_assertions import ClassAssertion
from ..assertions.kinds import AggregationKind, AttributeKind, ClassKind
from ..errors import IntegrationError
from ..logic.atoms import Atom
from ..logic.oterms import OTerm
from ..logic.rules import BodyItem, Rule
from ..model.schema import Schema
from .base import copy_local_class, local_range_token, member_kind_lookup
from .lattice import lcs
from .result import (
    IntegratedAggregation,
    IntegratedAttribute,
    IntegratedClass,
    IntegratedSchema,
    ValueSetOp,
    ValueSetSpec,
)

#: Predicate relating objects of two databases that data mappings
#: identify as the same real-world entity (the paper's ``y = x``).
SAME_OBJECT = "same_object"

_UNION_KINDS = frozenset(
    {AttributeKind.EQUIVALENCE, AttributeKind.SUBSET, AttributeKind.SUPERSET}
)

_MERGE_AGG_KINDS = frozenset(
    {
        AggregationKind.EQUIVALENCE,
        AggregationKind.SUPERSET,
        AggregationKind.SUBSET,
        AggregationKind.INTERSECTION,
    }
)

_RANGE_OK = frozenset({ClassKind.EQUIVALENCE, ClassKind.INTERSECTION})


def apply_intersection(
    result: IntegratedSchema,
    assertion: ClassAssertion,
    left: Schema,
    right: Schema,
    assertions: Optional[AssertionSet] = None,
) -> IntegratedClass:
    """Apply Principle 3 to an oriented ``A ∩ B`` assertion.

    Returns the virtual intersection class ``IS_AB``.  Idempotent per
    class pair.
    """
    if assertion.kind is not ClassKind.INTERSECTION:
        raise IntegrationError(
            f"Principle 3 applies to intersection assertions, got {assertion.kind}"
        )
    a_name = assertion.source.class_name
    b_name = assertion.target.class_name
    intersection_name = result.policy.intersection_class(a_name, b_name)
    if intersection_name in result:
        return result.cls(intersection_name)

    is_a = copy_local_class(result, left, a_name)
    is_b = copy_local_class(result, right, b_name)
    common = IntegratedClass(name=intersection_name, virtual=True)
    result.add_class(common)
    a_only = IntegratedClass(
        name=result.policy.left_only_class(a_name, b_name), virtual=True
    )
    b_only = IntegratedClass(
        name=result.policy.right_only_class(a_name, b_name), virtual=True
    )
    result.add_class(a_only)
    result.add_class(b_only)
    result.note(
        f"Principle 3: virtual classes {common.name}, {a_only.name}, "
        f"{b_only.name} for {left.name}.{a_name} ∩ {right.name}.{b_name}"
    )

    # ------------------------------------------------------------------
    # the three defining rules
    # ------------------------------------------------------------------
    x = OTerm.of("?x", common.name)
    result.add_rule(
        Rule.of(
            x,
            [
                OTerm.of("?x", is_a.name),
                OTerm.of("?y", is_b.name),
                Atom.of(SAME_OBJECT, "?x", "?y"),
            ],
            name=f"{common.name}-membership",
        ),
        principle="P3",
    )
    result.add_rule(
        Rule.of(
            OTerm.of("?x", a_only.name),
            [
                BodyItem(OTerm.of("?x", is_a.name)),
                BodyItem(OTerm.of("?x", common.name), positive=False),
            ],
            name=f"{a_only.name}-membership",
        ),
        principle="P3",
    )
    result.add_rule(
        Rule.of(
            OTerm.of("?x", b_only.name),
            [
                BodyItem(OTerm.of("?x", is_b.name)),
                BodyItem(OTerm.of("?x", common.name), positive=False),
            ],
            name=f"{b_only.name}-membership",
        ),
        principle="P3",
    )

    # ------------------------------------------------------------------
    # member correspondences on IS_AB
    # ------------------------------------------------------------------
    attr_corrs, agg_corrs = member_kind_lookup(assertion)
    class_a = left.effective_class(a_name)
    class_b = right.effective_class(b_name)

    for attribute in class_a.attributes:
        corr = attr_corrs.get(attribute.name)
        if corr is None:
            continue
        b_attr = corr.right.descriptor
        origin_a = (left.name, a_name, attribute.name)
        origin_b = (right.name, b_name, b_attr)
        if corr.kind in _UNION_KINDS:
            name = result.policy.merged(attribute.name, b_attr)
            common.add_attribute(
                IntegratedAttribute(
                    name,
                    ValueSetSpec(ValueSetOp.UNION, origin_a, origin_b),
                    (origin_a, origin_b),
                )
            )
            result.re_mapping.record(name, left.name, a_name, attribute.name)
            result.re_mapping.record(name, right.name, b_name, b_attr)
        elif corr.kind is AttributeKind.INTERSECTION:
            name = result.policy.intersection_attribute(attribute.name, b_attr)
            common.add_attribute(
                IntegratedAttribute(
                    name,
                    ValueSetSpec(
                        ValueSetOp.AIF, origin_a, origin_b, aif_attribute=name
                    ),
                    (origin_a, origin_b),
                    note="AIF-integrated (Principle 3)",
                )
            )
            result.re_mapping.record(name, left.name, a_name, attribute.name)
            result.re_mapping.record(name, right.name, b_name, b_attr)
        elif corr.kind is AttributeKind.EXCLUSION:
            common.add_attribute(
                IntegratedAttribute(
                    attribute.name, ValueSetSpec(ValueSetOp.LOCAL, origin_a), (origin_a,)
                )
            )
            other = b_attr if b_attr != attribute.name else f"{right.name}_{b_attr}"
            common.add_attribute(
                IntegratedAttribute(
                    other, ValueSetSpec(ValueSetOp.LOCAL, origin_b), (origin_b,)
                )
            )
        elif corr.kind is AttributeKind.COMPOSED_INTO:
            assert corr.composed_name is not None
            common.add_attribute(
                IntegratedAttribute(
                    corr.composed_name,
                    ValueSetSpec(ValueSetOp.CONCATENATION, origin_a, origin_b),
                    (origin_a, origin_b),
                    note="composed-into α",
                )
            )
        elif corr.kind is AttributeKind.MORE_SPECIFIC:
            common.add_attribute(
                IntegratedAttribute(
                    attribute.name,
                    ValueSetSpec(ValueSetOp.LOCAL, origin_a),
                    (origin_a,),
                    note="more-specific-than β",
                )
            )
            result.re_mapping.record(attribute.name, left.name, a_name, attribute.name)
        else:  # pragma: no cover - enum is closed
            raise IntegrationError(f"unhandled attribute kind {corr.kind}")

    for aggregation in class_a.aggregations:
        corr = agg_corrs.get(aggregation.name)
        if corr is None:
            continue
        g_name = corr.right.descriptor
        agg_b = class_b.aggregation(g_name)
        if corr.kind is AggregationKind.REVERSE:
            # The paper: ``case f ℵ g: report an error`` — a reverse pair
            # between merely intersecting classes is contradictory.
            raise IntegrationError(
                f"reverse aggregation correspondence {aggregation.name} ℵ "
                f"{g_name} is an error under an intersection assertion "
                f"(Principle 3)"
            )
        if corr.kind in _MERGE_AGG_KINDS:
            range_kind = (
                assertions.kind_of(aggregation.range_class, agg_b.range_class)
                if assertions is not None
                else None
            )
            if range_kind in _RANGE_OK or aggregation.range_class == agg_b.range_class:
                common.add_aggregation(
                    IntegratedAggregation(
                        name=result.policy.merged(aggregation.name, g_name),
                        range_class=local_range_token(
                            left.name, aggregation.range_class
                        ),
                        cardinality=lcs(aggregation.cardinality, agg_b.cardinality),
                        origins=(
                            (left.name, a_name, aggregation.name),
                            (right.name, b_name, g_name),
                        ),
                    )
                )
            else:
                _accumulate_agg(common, left.name, a_name, aggregation)
                _accumulate_agg(common, right.name, b_name, agg_b)
        elif corr.kind is AggregationKind.EXCLUSION:
            _accumulate_agg(common, left.name, a_name, aggregation)
            _accumulate_agg(common, right.name, b_name, agg_b)
        else:  # pragma: no cover - enum is closed
            raise IntegrationError(f"unhandled aggregation kind {corr.kind}")

    return common


def _accumulate_agg(common, schema_name, class_name, aggregation) -> None:
    name = aggregation.name
    if name in common.attributes or name in common.aggregations:
        name = f"{schema_name}_{aggregation.name}"
    common.add_aggregation(
        IntegratedAggregation(
            name=name,
            range_class=local_range_token(schema_name, aggregation.range_class),
            cardinality=aggregation.cardinality,
            origins=((schema_name, class_name, aggregation.name),),
        )
    )
