"""Integration reports: a structured summary of what an integration did.

``describe()`` prints the integrated schema itself; a *report* answers
the reviewer's questions — how many classes merged vs copied vs virtual,
which principles fired how often, which warnings need a human — as data
(:class:`IntegrationReport`) and as markdown (:func:`render_markdown`).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional, Tuple

from .result import IntegratedSchema
from .stats import IntegrationStats


@dataclasses.dataclass(frozen=True)
class IntegrationReport:
    """Aggregate view of one integration result."""

    schema_name: str
    total_classes: int
    merged_classes: int  # classes with ≥ 2 origins
    copied_classes: int  # single-origin locals
    virtual_classes: int  # rule-defined (Principles 3/5)
    is_a_links: int
    aggregation_links: int
    rules_by_principle: Tuple[Tuple[str, int], ...]
    non_evaluable_rules: int
    warnings: Tuple[str, ...]
    stats: Optional[IntegrationStats] = None

    @property
    def total_rules(self) -> int:
        return sum(count for _, count in self.rules_by_principle)


def build_report(
    result: IntegratedSchema, stats: Optional[IntegrationStats] = None
) -> IntegrationReport:
    """Summarize *result* (and the run's *stats*, when available)."""
    merged = copied = virtual = aggregation_links = 0
    for integrated_class in result:
        if integrated_class.virtual:
            virtual += 1
        elif len(integrated_class.origins) >= 2:
            merged += 1
        else:
            copied += 1
        aggregation_links += len(integrated_class.aggregations)
    principles = Counter(rule.principle for rule in result.rules)
    return IntegrationReport(
        schema_name=result.name,
        total_classes=len(result),
        merged_classes=merged,
        copied_classes=copied,
        virtual_classes=virtual,
        is_a_links=len(result.is_a_links()),
        aggregation_links=aggregation_links,
        rules_by_principle=tuple(sorted(principles.items())),
        non_evaluable_rules=sum(1 for rule in result.rules if not rule.evaluable),
        warnings=tuple(note for note in result.log if note.startswith("WARNING")),
        stats=stats,
    )


def render_markdown(report: IntegrationReport) -> str:
    """The report as a readable markdown document."""
    lines = [
        f"# Integration report — {report.schema_name}",
        "",
        "| metric | value |",
        "|---|---|",
        f"| classes (total) | {report.total_classes} |",
        f"| merged (≥ 2 origins) | {report.merged_classes} |",
        f"| copied locals | {report.copied_classes} |",
        f"| virtual (rule-defined) | {report.virtual_classes} |",
        f"| is-a links | {report.is_a_links} |",
        f"| aggregation links | {report.aggregation_links} |",
        f"| rules (total) | {report.total_rules} |",
    ]
    for principle, count in report.rules_by_principle:
        lines.append(f"| rules from {principle} | {count} |")
    if report.non_evaluable_rules:
        lines.append(f"| non-evaluable rules | {report.non_evaluable_rules} |")
    if report.stats is not None:
        lines += [
            f"| pair checks | {report.stats.pairs_checked} |",
            f"| pairs pruned (≡ / labels) | "
            f"{report.stats.pairs_skipped_equivalence} / "
            f"{report.stats.pairs_skipped_labels} |",
        ]
    if report.warnings:
        lines += ["", "## Warnings (need review)", ""]
        lines += [f"- {warning}" for warning in report.warnings]
    return "\n".join(lines)
