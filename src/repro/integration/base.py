"""Shared machinery for the integration principles (§5).

* :func:`copy_local_class` — the paper's first default strategy: a class
  with no equivalence assertion is copied into the integrated schema,
  with relationships rebuilt "in terms of the corresponding local ones".
* :func:`local_range_token` / :func:`resolve_range` — aggregation ranges
  are recorded as pending local references (``@schema.class``) while the
  integration runs and resolved to integrated names by the §6.2 link
  pass, because BFS may reach an aggregation before its range class.
* :func:`member_kind_lookup` — index of a class assertion's member
  correspondences, keyed by the left member name, which is how Principle
  1's "for each attribute pair (a, b)" loop finds its θ.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..assertions.aggregation_assertions import AggregationCorrespondence
from ..assertions.attribute_assertions import AttributeCorrespondence
from ..assertions.class_assertions import ClassAssertion
from ..model.schema import Schema
from .result import (
    IntegratedAggregation,
    IntegratedAttribute,
    IntegratedClass,
    IntegratedSchema,
    ValueSetOp,
    ValueSetSpec,
)

PENDING_PREFIX = "@"


def local_range_token(schema_name: str, class_name: str) -> str:
    """A pending reference to a local range class, resolved by §6.2."""
    return f"{PENDING_PREFIX}{schema_name}.{class_name}"


def parse_range_token(token: str) -> Optional[Tuple[str, str]]:
    """Invert :func:`local_range_token`; None for already-resolved names."""
    if not token.startswith(PENDING_PREFIX):
        return None
    schema_name, _, class_name = token[len(PENDING_PREFIX):].partition(".")
    return (schema_name, class_name)


def copy_local_class(
    result: IntegratedSchema, schema: Schema, class_name: str
) -> IntegratedClass:
    """Copy *class_name* of *schema* into the integrated schema (default 1).

    Idempotent: an already-placed class (copied or merged) is returned
    as-is.  Attribute value sets are LOCAL specs, aggregation ranges are
    pending local references, and local is-a links are *not* added here —
    the driving algorithm inserts links, so the §6.2 pass can de-dup them.
    """
    existing = result.is_name(schema.name, class_name)
    if existing is not None:
        return result.cls(existing)
    class_def = schema.cls(class_name)
    name = result.policy.local(schema.name, class_name, taken=class_name in result)
    integrated = IntegratedClass(name=name, origins=((schema.name, class_name),))
    for attribute in class_def.attributes:
        origin = (schema.name, class_name, attribute.name)
        integrated.add_attribute(
            IntegratedAttribute(
                name=attribute.name,
                spec=ValueSetSpec(ValueSetOp.LOCAL, origin),
                origins=(origin,),
            )
        )
        result.re_mapping.record(attribute.name, schema.name, class_name, attribute.name)
    for aggregation in class_def.aggregations:
        origin = (schema.name, class_name, aggregation.name)
        integrated.add_aggregation(
            IntegratedAggregation(
                name=aggregation.name,
                range_class=local_range_token(schema.name, aggregation.range_class),
                cardinality=aggregation.cardinality,
                origins=(origin,),
            )
        )
    result.add_class(integrated)
    result.note(f"copied local class {schema.name}.{class_name} as {name}")
    return integrated


def member_kind_lookup(
    assertion: ClassAssertion,
) -> Tuple[Dict[str, AttributeCorrespondence], Dict[str, AggregationCorrespondence]]:
    """Index member correspondences by the left member's descriptor.

    Only top-level (single-step) correspondences participate in class
    merging; nested paths belong to derivation-style declarations.
    """
    attributes: Dict[str, AttributeCorrespondence] = {}
    aggregations: Dict[str, AggregationCorrespondence] = {}
    for corr in assertion.attribute_corrs:
        if len(corr.left.elements) == 1 and len(corr.right.elements) == 1:
            attributes[corr.left.descriptor] = corr
    for corr in assertion.aggregation_corrs:
        if len(corr.left.elements) == 1 and len(corr.right.elements) == 1:
            aggregations[corr.left.descriptor] = corr
    return attributes, aggregations
