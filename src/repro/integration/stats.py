"""Instrumentation of the integration algorithms (§6.3).

The paper's complexity claim is about *pair checks*: the naive algorithm
checks more than O(n²) class pairs while the optimized one averages
O(n).  :class:`IntegrationStats` counts exactly those events so the
benchmarks can regenerate the analysis:

* ``pairs_checked`` — pairs whose assertion lookup was actually
  performed ("really checked during the execution", §6.3 kind 1);
* ``pairs_skipped_labels`` — pairs pruned by the label mechanism
  (§6.3 kind 3);
* ``pairs_skipped_equivalence`` — brother pairs removed after an
  equivalence match (§6.3 kind 2);
* ``dfs_visits`` — nodes visited by ``path_labelling`` calls;
* plus output-side counters (links, merges, rules).
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass
class IntegrationStats:
    """Counters for one integration run."""

    pairs_enqueued: int = 0
    pairs_checked: int = 0
    pairs_skipped_labels: int = 0
    pairs_skipped_equivalence: int = 0
    pairs_skipped_visited: int = 0
    dfs_calls: int = 0
    dfs_visits: int = 0
    is_a_links_inserted: int = 0
    is_a_links_removed: int = 0
    classes_merged: int = 0
    rules_generated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def total_work(self) -> int:
        """Pair checks plus DFS node visits — the §6.3 cost measure."""
        return self.pairs_checked + self.dfs_visits

    def describe(self) -> str:
        lines = ["integration stats:"]
        for key, value in self.as_dict().items():
            lines.append(f"  {key} = {value}")
        return "\n".join(lines)
