"""Integration principles and algorithms (§5-§6 of the paper).

Principles 1-6 as composable functions, the cardinality-constraint
lattices (Fig 13), AIFs and concatenation, the naive and optimized
integration algorithms with pair-check instrumentation, and the §6.2
link-integration pass.
"""

from .aif import AIF, AIFRegistry, ReMapping, average_aif, prefer_left_aif
from .base import copy_local_class, local_range_token, parse_range_token
from .concatenation import concatenation
from .dispatch import integrate_pair
from .lattice import (
    ConstraintLattice,
    EXTENDED_LATTICE,
    SIMPLE_LATTICE,
    lcs,
)
from .link_integration import (
    finalize_aggregation_ranges,
    finalize_links,
    insert_local_links,
    merge_parallel_aggregations,
    remove_redundant_is_a,
)
from .naive import naive_schema_integration, sull_kashyap_style
from .naming import NamePolicy
from .optimized import schema_integration
from .principle_derivation import apply_derivation, build_rule
from .principle_disjoint import apply_disjoint, apply_disjoint_family
from .principle_equivalence import apply_equivalence
from .principle_inclusion import (
    apply_inclusion,
    apply_inclusions_generalized,
    most_specific_superclasses,
)
from .principle_intersection import SAME_OBJECT, apply_intersection
from .report import IntegrationReport, build_report, render_markdown
from .result import (
    IntegratedAggregation,
    IntegratedAttribute,
    IntegratedClass,
    IntegratedRule,
    IntegratedSchema,
    ValueContext,
    ValueSetOp,
    ValueSetSpec,
)
from .stats import IntegrationStats

__all__ = [
    "AIF",
    "AIFRegistry",
    "ConstraintLattice",
    "EXTENDED_LATTICE",
    "IntegratedAggregation",
    "IntegratedAttribute",
    "IntegratedClass",
    "IntegratedRule",
    "IntegratedSchema",
    "IntegrationReport",
    "build_report",
    "render_markdown",
    "IntegrationStats",
    "NamePolicy",
    "ReMapping",
    "SAME_OBJECT",
    "SIMPLE_LATTICE",
    "ValueContext",
    "ValueSetOp",
    "ValueSetSpec",
    "apply_derivation",
    "apply_disjoint",
    "apply_disjoint_family",
    "apply_equivalence",
    "apply_inclusion",
    "apply_inclusions_generalized",
    "apply_intersection",
    "average_aif",
    "build_rule",
    "concatenation",
    "copy_local_class",
    "finalize_aggregation_ranges",
    "finalize_links",
    "insert_local_links",
    "integrate_pair",
    "lcs",
    "local_range_token",
    "merge_parallel_aggregations",
    "most_specific_superclasses",
    "naive_schema_integration",
    "parse_range_token",
    "prefer_left_aif",
    "remove_redundant_is_a",
    "schema_integration",
    "sull_kashyap_style",
]
