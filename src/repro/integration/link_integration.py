"""Link integration — Principle 6 and §6.2.

The integration algorithms take "each local link ... implicitly as a
link in the integrated schema", which can leave the redundant shapes of
Fig 12: a duplicated is-a edge between two merged pairs (12(a)) and a
direct edge short-cutting an is-a path (12(b), the edge marked ``*``).
This module cleans them up and finishes aggregation links:

* :func:`insert_local_links` — pour both schemas' local is-a links into
  the integrated schema (between the ``IS(...)`` images);
* :func:`remove_redundant_is_a` — drop every is-a edge for which an
  alternative longer path exists (transitive reduction of the DAG; both
  Fig 12 shapes are instances);
* :func:`finalize_aggregation_ranges` — resolve the pending
  ``@schema.class`` range tokens recorded during class integration to
  integrated class names, copying still-unplaced range classes in (the
  paper's first default strategy applied transitively);
* :func:`merge_parallel_aggregations` — Principle 6's cardinality
  resolution for aggregation links declared related: when one integrated
  class ends up with the two local versions of a merged link (same name,
  same range), they collapse to one with the lattice lcs.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..model.schema import Schema
from .base import copy_local_class, parse_range_token
from .lattice import lcs
from .result import IntegratedSchema
from .stats import IntegrationStats


def insert_local_links(
    result: IntegratedSchema,
    schemas: Dict[str, Schema],
    stats: IntegrationStats,
) -> List[Tuple[str, str]]:
    """Insert every local is-a link between the integrated images.

    Links whose endpoints merged into the same integrated class vanish;
    identical links from the two schemas (Fig 12(a)) deduplicate through
    :meth:`IntegratedSchema.add_is_a`.
    """
    inserted: List[Tuple[str, str]] = []
    for schema in schemas.values():
        for child, parent in schema.is_a_links():
            child_is = result.is_name(schema.name, child)
            parent_is = result.is_name(schema.name, parent)
            if child_is is None or parent_is is None or child_is == parent_is:
                continue
            if result.add_is_a(child_is, parent_is):
                stats.is_a_links_inserted += 1
                inserted.append((child_is, parent_is))
    return inserted


def remove_redundant_is_a(
    result: IntegratedSchema, stats: IntegrationStats
) -> List[Tuple[str, str]]:
    """Transitive reduction: drop edges short-cutting an is-a path.

    An edge ``is_a(A, B)`` is redundant when some path ``A → ... → B`` of
    length ≥ 2 exists without it — exactly the ``*`` edge of Fig 12(b);
    Fig 12(a)'s duplicate collapses at insertion already.  Deterministic
    order (sorted edges) keeps outputs stable.
    """
    removed: List[Tuple[str, str]] = []
    for child, parent in sorted(result.is_a_links()):
        result.remove_is_a(child, parent)
        if result.has_is_a_path(child, parent):
            removed.append((child, parent))
            stats.is_a_links_removed += 1
            result.note(f"§6.2: removed redundant is_a({child}, {parent})")
        else:
            result.add_is_a(child, parent)
    return removed


def finalize_aggregation_ranges(
    result: IntegratedSchema, schemas: Dict[str, Schema]
) -> None:
    """Resolve pending aggregation range tokens to integrated names.

    A range class never touched by an assertion is copied in on demand
    (transitive closure of the first default strategy), so aggregation
    functions always point at real integrated classes.
    """
    # Iterate until stable: copying a range class can introduce new
    # pending tokens (its own aggregations).
    while True:
        pending: List[Tuple[str, str]] = []
        for integrated in result:
            for aggregation in integrated.aggregations.values():
                token = parse_range_token(aggregation.range_class)
                if token is not None:
                    pending.append(token)
        if not pending:
            return
        for schema_name, class_name in pending:
            if result.is_name(schema_name, class_name) is None:
                copy_local_class(result, schemas[schema_name], class_name)
        for integrated in result:
            for aggregation in integrated.aggregations.values():
                token = parse_range_token(aggregation.range_class)
                if token is not None:
                    resolved = result.is_name(*token)
                    if resolved is not None:
                        aggregation.range_class = resolved


def merge_parallel_aggregations(result: IntegratedSchema) -> int:
    """Collapse same-name/same-range aggregation duplicates via lcs.

    Happens when both local versions of a declared-equivalent link land
    on one merged class through different code paths; Principle 6 says
    the survivor carries ``lcs(cc1, cc2)``.  Returns the number of links
    merged.
    """
    merged_count = 0
    for integrated in result:
        by_signature: Dict[Tuple[str, str], List[str]] = {}
        for name, aggregation in integrated.aggregations.items():
            by_signature.setdefault(
                (aggregation.name.split("$")[0], aggregation.range_class), []
            ).append(name)
        seen: Set[Tuple[str, str]] = set()
        for (base, range_class), names in by_signature.items():
            if len(names) < 2 or (base, range_class) in seen:
                continue
            seen.add((base, range_class))
            survivor = integrated.aggregations[names[0]]
            for other_name in names[1:]:
                other = integrated.aggregations.pop(other_name)
                survivor.cardinality = lcs(survivor.cardinality, other.cardinality)
                survivor.origins = survivor.origins + other.origins
                merged_count += 1
                result.note(
                    f"Principle 6: merged parallel aggregation {other_name} "
                    f"into {survivor.name} with cc {survivor.cardinality}"
                )
    return merged_count


def finalize_links(
    result: IntegratedSchema,
    schemas: Dict[str, Schema],
    stats: IntegrationStats,
    reduce_is_a: bool = True,
) -> None:
    """The full §6.2 pass: locals in, redundancy out, ranges resolved."""
    insert_local_links(result, schemas, stats)
    if reduce_is_a:
        remove_redundant_is_a(result, stats)
    finalize_aggregation_ranges(result, schemas)
    merge_parallel_aggregations(result)
