"""Principle 1: integration of equivalence assertions (§5).

Two equivalent classes merge into one integrated class ``IS_AB``; their
members integrate according to the attribute / aggregation
correspondences of the assertion:

=============  ======================================================
θ for (a, b)   effect on ``IS_AB``
=============  ======================================================
≡, ⊇, ⊆        one attribute ``IS_ab``; ``value_set := vs(a) ∪ vs(b)``
∩              three attributes ``a_`` (``vs(a)/vs(b)``), ``b_``
               (``vs(b)/vs(a)``), ``a_b`` (``vs(a) ∩ vs(b)``)
∅              both attributes, kept apart
α(z)           one new attribute ``z``; values via ``cancatenation``
β              only the more specific attribute (the left one)
=============  ======================================================

=============  ======================================================
θ for (f, g)   effect on ``IS_AB``
=============  ======================================================
ℵ              both functions, with their local cc's
≡, ⊇, ⊆, ∩     merged ``IS_fg`` when the range classes are related by
               ≡ or ∩; cardinality from Principle 6 (lattice lcs)
∅              both functions, with their local cc's
=============  ======================================================

Unmentioned members follow the second default strategy: "regard them as
being semantically disjointed ... simply accumulated into the
corresponding integrated class."
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..assertions.assertion_set import AssertionSet
from ..assertions.class_assertions import ClassAssertion
from ..assertions.kinds import AggregationKind, AttributeKind, ClassKind
from ..errors import IntegrationError
from ..model.schema import Schema
from .base import local_range_token, member_kind_lookup
from .lattice import lcs
from .result import (
    IntegratedAggregation,
    IntegratedAttribute,
    IntegratedClass,
    IntegratedSchema,
    ValueSetOp,
    ValueSetSpec,
)

#: Attribute kinds merged into a single attribute with a union value set.
_UNION_KINDS = frozenset(
    {AttributeKind.EQUIVALENCE, AttributeKind.SUBSET, AttributeKind.SUPERSET}
)

#: Aggregation kinds eligible for merging (the paper lists ≡, ⊇, ∩; we
#: include ⊆ for symmetry and document the extension in DESIGN.md).
_MERGE_AGG_KINDS = frozenset(
    {
        AggregationKind.EQUIVALENCE,
        AggregationKind.SUPERSET,
        AggregationKind.SUBSET,
        AggregationKind.INTERSECTION,
    }
)

#: Range-class relationships that allow aggregation merging.
_RANGE_OK = frozenset({ClassKind.EQUIVALENCE, ClassKind.INTERSECTION})


def apply_equivalence(
    result: IntegratedSchema,
    assertion: ClassAssertion,
    left: Schema,
    right: Schema,
    assertions: Optional[AssertionSet] = None,
) -> IntegratedClass:
    """Merge the two classes of an (oriented) equivalence *assertion*.

    *assertion* must be oriented ``left.name → right.name``.  The
    assertion set, when given, supplies range-class relationships for
    aggregation merging.  Idempotent per class pair.
    """
    if assertion.kind is not ClassKind.EQUIVALENCE:
        raise IntegrationError(
            f"Principle 1 applies to equivalence assertions, got {assertion.kind}"
        )
    a_name = assertion.source.class_name
    b_name = assertion.target.class_name
    already_left = result.is_name(left.name, a_name)
    already_right = result.is_name(right.name, b_name)
    if already_left is not None and already_right is not None:
        return result.cls(already_left)
    if already_left is not None:
        # Transitivity: A is merged already (A ≡ B' earlier); absorb B.
        return _absorb(
            result, result.cls(already_left), assertion,
            right.effective_class(b_name), right.name, b_name, from_left=False,
        )
    if already_right is not None:
        return _absorb(
            result, result.cls(already_right), assertion,
            left.effective_class(a_name), left.name, a_name, from_left=True,
        )

    class_a = left.effective_class(a_name)
    class_b = right.effective_class(b_name)
    merged_name = result.policy.merged(a_name, b_name)
    if merged_name in result:
        merged_name = f"{left.name}_{merged_name}"
    merged = IntegratedClass(
        name=merged_name,
        origins=((left.name, a_name), (right.name, b_name)),
    )
    result.add_class(merged)
    result.note(f"merged {left.name}.{a_name} ≡ {right.name}.{b_name} as {merged_name}")

    attr_corrs, agg_corrs = member_kind_lookup(assertion)
    used_right_attrs: Set[str] = set()
    used_right_aggs: Set[str] = set()

    # ------------------------------------------------------------------
    # attribute pairs with a declared correspondence
    # ------------------------------------------------------------------
    for attribute in class_a.attributes:
        corr = attr_corrs.get(attribute.name)
        if corr is None:
            continue
        b_attr = corr.right.descriptor
        used_right_attrs.add(b_attr)
        origin_a = (left.name, a_name, attribute.name)
        origin_b = (right.name, b_name, b_attr)
        if corr.kind in _UNION_KINDS:
            name = result.policy.merged(attribute.name, b_attr)
            _add_attr(
                result, merged, name,
                ValueSetSpec(ValueSetOp.UNION, origin_a, origin_b),
                (origin_a, origin_b),
            )
            result.re_mapping.record(name, left.name, a_name, attribute.name)
            result.re_mapping.record(name, right.name, b_name, b_attr)
        elif corr.kind is AttributeKind.INTERSECTION:
            only_a = result.policy.left_only_attribute(attribute.name, b_attr)
            only_b = result.policy.right_only_attribute(attribute.name, b_attr)
            both = result.policy.intersection_attribute(attribute.name, b_attr)
            _add_attr(result, merged, only_a,
                      ValueSetSpec(ValueSetOp.DIFFERENCE, origin_a, origin_b),
                      (origin_a,))
            _add_attr(result, merged, only_b,
                      ValueSetSpec(ValueSetOp.DIFFERENCE, origin_b, origin_a),
                      (origin_b,))
            _add_attr(result, merged, both,
                      ValueSetSpec(ValueSetOp.INTERSECTION, origin_a, origin_b),
                      (origin_a, origin_b))
            result.re_mapping.record(both, left.name, a_name, attribute.name)
            result.re_mapping.record(both, right.name, b_name, b_attr)
        elif corr.kind is AttributeKind.EXCLUSION:
            _accumulate_attribute(result, merged, origin_a)
            _accumulate_attribute(result, merged, origin_b)
        elif corr.kind is AttributeKind.COMPOSED_INTO:
            assert corr.composed_name is not None
            _add_attr(
                result, merged, corr.composed_name,
                ValueSetSpec(ValueSetOp.CONCATENATION, origin_a, origin_b),
                (origin_a, origin_b),
                note="composed-into α",
            )
        elif corr.kind is AttributeKind.MORE_SPECIFIC:
            # Keep only the more specific attribute (left, by orientation
            # convention: declare ``a β b`` with a the more specific).
            _add_attr(result, merged, attribute.name,
                      ValueSetSpec(ValueSetOp.LOCAL, origin_a),
                      (origin_a,), note="more-specific-than β")
            result.re_mapping.record(attribute.name, left.name, a_name, attribute.name)
        else:  # pragma: no cover - enum is closed
            raise IntegrationError(f"unhandled attribute kind {corr.kind}")

    # ------------------------------------------------------------------
    # aggregation pairs with a declared correspondence
    # ------------------------------------------------------------------
    for aggregation in class_a.aggregations:
        corr = agg_corrs.get(aggregation.name)
        if corr is None:
            continue
        g_name = corr.right.descriptor
        used_right_aggs.add(g_name)
        agg_b = class_b.aggregation(g_name)
        origin_f = (left.name, a_name, aggregation.name)
        origin_g = (right.name, b_name, g_name)
        if corr.kind is AggregationKind.REVERSE or corr.kind is AggregationKind.EXCLUSION:
            _accumulate_aggregation(result, merged, left.name, a_name, aggregation)
            _accumulate_aggregation(result, merged, right.name, b_name, agg_b)
        elif corr.kind in _MERGE_AGG_KINDS:
            range_kind = (
                assertions.kind_of(aggregation.range_class, agg_b.range_class)
                if assertions is not None
                else None
            )
            same_range = (
                aggregation.range_class == agg_b.range_class
                and left.name != right.name
            )
            if range_kind in _RANGE_OK or (range_kind is None and same_range):
                name = result.policy.merged(aggregation.name, g_name)
                merged.add_aggregation(
                    IntegratedAggregation(
                        name=name,
                        range_class=local_range_token(left.name, aggregation.range_class),
                        cardinality=lcs(aggregation.cardinality, agg_b.cardinality),
                        origins=(origin_f, origin_g),
                    )
                )
                result.note(
                    f"merged aggregation {aggregation.name}/{g_name} with cc "
                    f"lcs({aggregation.cardinality}, {agg_b.cardinality})"
                )
            else:
                result.note(
                    f"aggregations {aggregation.name}/{g_name} declared "
                    f"{corr.kind} but range classes unrelated; accumulated"
                )
                _accumulate_aggregation(result, merged, left.name, a_name, aggregation)
                _accumulate_aggregation(result, merged, right.name, b_name, agg_b)
        else:  # pragma: no cover - enum is closed
            raise IntegrationError(f"unhandled aggregation kind {corr.kind}")

    # ------------------------------------------------------------------
    # default strategy 2: accumulate unmentioned members
    # ------------------------------------------------------------------
    for attribute in class_a.attributes:
        if attribute.name not in attr_corrs:
            _accumulate_attribute(result, merged, (left.name, a_name, attribute.name))
    for attribute in class_b.attributes:
        if attribute.name not in used_right_attrs and not _is_right_target(
            attr_corrs, attribute.name
        ):
            _accumulate_attribute(result, merged, (right.name, b_name, attribute.name))
    for aggregation in class_a.aggregations:
        if aggregation.name not in agg_corrs:
            _accumulate_aggregation(result, merged, left.name, a_name, aggregation)
    for aggregation in class_b.aggregations:
        if aggregation.name not in used_right_aggs and not _is_right_target(
            agg_corrs, aggregation.name
        ):
            _accumulate_aggregation(result, merged, right.name, b_name, aggregation)

    return merged


def _absorb(
    result: IntegratedSchema,
    merged: IntegratedClass,
    assertion: ClassAssertion,
    newcomer,
    newcomer_schema: str,
    newcomer_class: str,
    from_left: bool,
) -> IntegratedClass:
    """Fold one more equivalent local class into an existing merge.

    Happens when equivalence chains across rounds or operands make a
    class equivalent to an already-merged pair (A ≡ B, A ≡ C).  Member
    correspondences extend the matching integrated attributes' origins;
    unmatched members accumulate under the default strategy.
    """
    result.map_origin(newcomer_schema, newcomer_class, merged.name)
    result.note(
        f"absorbed {newcomer_schema}.{newcomer_class} into {merged.name} "
        f"(transitive equivalence)"
    )
    corr_of: dict = {}
    for corr in assertion.attribute_corrs:
        key = corr.right.descriptor if not from_left else corr.left.descriptor
        anchor = corr.left.descriptor if not from_left else corr.right.descriptor
        corr_of[key] = anchor
    anchor_schema = assertion.left_schema if not from_left else assertion.right_schema
    for attribute in newcomer.attributes:
        origin = (newcomer_schema, newcomer_class, attribute.name)
        anchor_name = corr_of.get(attribute.name)
        target = None
        if anchor_name is not None:
            for existing in merged.attributes.values():
                if any(
                    s == anchor_schema and a == anchor_name
                    for s, _, a in existing.origins
                ):
                    target = existing
                    break
        if target is not None:
            if origin not in target.origins:
                target.origins = target.origins + (origin,)
            result.re_mapping.record(
                target.name, newcomer_schema, newcomer_class, attribute.name
            )
        elif not merged.attributes.get(attribute.name) and not merged.aggregations.get(
            attribute.name
        ):
            _accumulate_attribute(result, merged, origin)
    for aggregation in newcomer.aggregations:
        existing = merged.aggregations.get(aggregation.name)
        if existing is not None:
            origin = (newcomer_schema, newcomer_class, aggregation.name)
            if origin not in existing.origins:
                existing.origins = existing.origins + (origin,)
                existing.cardinality = lcs(existing.cardinality, aggregation.cardinality)
        else:
            _accumulate_aggregation(
                result, merged, newcomer_schema, newcomer_class, aggregation
            )
    return merged


def _is_right_target(corrs, member_name: str) -> bool:
    return any(corr.right.descriptor == member_name for corr in corrs.values())


def _add_attr(
    result: IntegratedSchema,
    merged: IntegratedClass,
    name: str,
    spec: ValueSetSpec,
    origins: Tuple[Tuple[str, str, str], ...],
    note: str = "",
) -> None:
    if name in merged.attributes or name in merged.aggregations:
        name = f"{origins[0][0]}_{name}"
    merged.add_attribute(IntegratedAttribute(name, spec, origins, note))


def _accumulate_attribute(
    result: IntegratedSchema,
    merged: IntegratedClass,
    origin: Tuple[str, str, str],
) -> None:
    schema_name, class_name, attr_name = origin
    name = attr_name
    if name in merged.attributes or name in merged.aggregations:
        name = f"{schema_name}_{attr_name}"
    merged.add_attribute(
        IntegratedAttribute(name, ValueSetSpec(ValueSetOp.LOCAL, origin), (origin,))
    )
    result.re_mapping.record(name, schema_name, class_name, attr_name)


def _accumulate_aggregation(
    result: IntegratedSchema,
    merged: IntegratedClass,
    schema_name: str,
    class_name: str,
    aggregation,
) -> None:
    name = aggregation.name
    if name in merged.attributes or name in merged.aggregations:
        name = f"{schema_name}_{aggregation.name}"
    merged.add_aggregation(
        IntegratedAggregation(
            name=name,
            range_class=local_range_token(schema_name, aggregation.range_class),
            cardinality=aggregation.cardinality,
            origins=((schema_name, class_name, aggregation.name),),
        )
    )
