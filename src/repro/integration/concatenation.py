"""The ``cancatenation`` function of Principle 1 (sic — the paper's spelling).

Composed-into correspondences (``city α(address) street-number``) create
a new attribute whose values concatenate the two local values *of the
same real-world object*::

    cancatenation(x, y) = x · y   if oi1 ∈ A, oi2 ∈ B with oi1 = oi2
                                   (in terms of data mapping),
                          Null    otherwise

Object identity across databases is decided by data mappings; callers
pass the resolved value pair (or None when the mapping found no partner).
"""

from __future__ import annotations

from typing import Any, Optional


def concatenation(x: Any, y: Any, separator: str = " ") -> Optional[str]:
    """``x · y`` when both present, Null otherwise.

    The paper's ``·`` is string concatenation; a separator keeps
    ``city`` + ``street-number`` readable ("Darmstadt 64293" rather than
    "Darmstadt64293").  Pass ``separator=""`` for the literal behaviour.
    """
    if x is None or y is None:
        return None
    return f"{x}{separator}{y}"
