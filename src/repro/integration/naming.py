"""Naming of integrated concepts — the ``IS(...)`` notation of §5.

The paper writes ``IS(S1•A)`` for the integrated version of class ``A``
and ``IS_AB`` for the merged version of two equivalent/intersecting
classes, then notes that a concrete name is *chosen* ("Let 'person' be
chosen to stand for IS_person,human", Example 6).  :class:`NamePolicy`
encapsulates that choice:

* merged concepts default to the **left** (first schema's) name, the
  choice Example 6 makes, overridable per pair;
* unmatched concepts keep their local name; when the two schemas both
  contribute an unmatched class of the same name, the right one is
  disambiguated with its schema prefix (``S2_stock``);
* intersection parts follow Principle 3's ``A_``, ``B_``, ``A_B``
  spellings for attributes and ``IS_A-`` / ``IS_B-`` / ``IS_AB`` for the
  virtual classes, rendered ASCII-safe.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

Concept = Tuple[str, str]  # (schema name, class name)


class NamePolicy:
    """Chooses display names for integrated concepts.

    Parameters
    ----------
    overrides:
        Mapping of ``(left_name, right_name)`` to the desired merged
        name, for classes and for attributes alike.
    """

    def __init__(self, overrides: Optional[Dict[Tuple[str, str], str]] = None) -> None:
        self._overrides = dict(overrides or {})

    # ------------------------------------------------------------------
    def merged(self, left_name: str, right_name: str) -> str:
        """Name for the merged version of two equivalent concepts."""
        override = self._overrides.get((left_name, right_name))
        if override:
            return override
        return left_name

    def local(self, schema_name: str, class_name: str, taken: bool) -> str:
        """Name for a copied (unmatched) local concept.

        *taken* flags a collision with an already-placed concept, in
        which case the schema prefix disambiguates.
        """
        return f"{schema_name}_{class_name}" if taken else class_name

    # ------------------------------------------------------------------
    # Principle 3 spellings
    # ------------------------------------------------------------------
    def intersection_class(self, left_name: str, right_name: str) -> str:
        """``IS_AB`` — the common part of an intersection pair."""
        override = self._overrides.get((left_name, right_name))
        if override:
            return override
        return f"{left_name}_{right_name}"

    def left_only_class(self, left_name: str, right_name: str) -> str:
        """``IS_A-`` — the part of A outside B."""
        return f"{left_name}_only"

    def right_only_class(self, left_name: str, right_name: str) -> str:
        """``IS_B-`` — the part of B outside A."""
        return f"{right_name}_only"

    def intersection_attribute(self, left_name: str, right_name: str) -> str:
        """``a_b`` — the common part of an attribute intersection."""
        return f"{left_name}_{right_name}"

    def left_only_attribute(self, left_name: str, right_name: str) -> str:
        """``a_`` — values of a outside b."""
        return f"{left_name}_only"

    def right_only_attribute(self, left_name: str, right_name: str) -> str:
        """``b_`` — values of b outside a."""
        return f"{right_name}_only"
