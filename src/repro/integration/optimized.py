"""Algorithms ``schema_integration`` and ``path_labelling`` (§6.1).

The optimized integration algorithm: breadth-first traversal over node
pairs, with three pruning devices layered on top of the naive control —

1. **assertion-driven pruning** — the switch over ``N1 θ N2`` enqueues
   only the pair families the semantics cannot derive (observations 1-4:
   equivalence derives both one-sided families, inclusion derives one,
   exclusion/derivation derive both, intersection derives neither);
2. **brother-pair removal** — after ``N1 ≡ N2``, pairs pairing either
   node with the other's brothers are removed from the queue (line 10);
3. **label pairs** — every node carries ``(labels, inherited-labels)``;
   a pair whose label sets intersect crosswise is skipped without an
   assertion lookup (line 7 / lines 34-35).

``path_labelling`` is the embedded depth-first search fired when a ``⊆``
pair is met: it walks the superclass's subtree, labels inclusion paths,
merges on a deep equivalence (lines 10-12), marks assertion-less nodes
``*`` and, on a terminating node (incompatible assertion or leaf),
backtracks along the ``*`` trail, undoes the tentative labels and emits
the single is-a link to the deepest non-``*`` node — realizing Principle
2's Fig 8(b) minimal-link form dynamically.

Interpretation note (DESIGN.md §5): a *leaf* reached with ``N1 ⊆ leaf``
also emits ``is_a(IS(N1), IS(leaf))`` — the paper's pseudo-code only
emits links from the backtracking cases, which would lose the link when
the deepest ⊆ node has no children at all.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from typing import Dict, List, Optional, Set, Tuple

from ..assertions.assertion_set import AssertionSet
from ..assertions.kinds import ClassKind
from ..model.schema import Schema, VIRTUAL_ROOT
from .base import copy_local_class
from .dispatch import integrate_pair
from .link_integration import finalize_links
from .naming import NamePolicy
from .principle_equivalence import apply_equivalence
from .result import IntegratedSchema
from .stats import IntegrationStats

Pair = Tuple[str, str]

#: θ values that terminate a ``path_labelling`` path (the paper lists
#: {→, ∅, ⊇} in the pseudo-code and adds ∩ in the prose; we follow the
#: prose — an intersection node cannot extend an inclusion path either).
_TERMINATING = frozenset(
    {
        ClassKind.DERIVATION,
        ClassKind.EXCLUSION,
        ClassKind.SUPERSET,
        ClassKind.INTERSECTION,
    }
)


class _Side:
    """Per-schema traversal state: the (labels, inherited) pairs."""

    def __init__(self) -> None:
        self.labels: Dict[str, Set[int]] = defaultdict(set)
        self.inherited: Dict[str, Set[int]] = defaultdict(set)


def schema_integration(
    left: Schema,
    right: Schema,
    assertions: AssertionSet,
    policy: Optional[NamePolicy] = None,
    name: str = "",
) -> Tuple[IntegratedSchema, IntegrationStats]:
    """Run the optimized algorithm; returns (integrated schema, stats)."""
    result = IntegratedSchema(name or f"IS({left.name},{right.name})", policy)
    stats = IntegrationStats()
    applied_derivations: Set[int] = set()
    side1, side2 = _Side(), _Side()
    label_counter = itertools.count(1)

    queue: deque = deque([(VIRTUAL_ROOT, VIRTUAL_ROOT)])
    enqueued: Set[Pair] = {(VIRTUAL_ROOT, VIRTUAL_ROOT)}
    cancelled: Set[Pair] = set()

    def enqueue(pair: Pair) -> None:
        if pair not in enqueued:
            enqueued.add(pair)
            stats.pairs_enqueued += 1
            queue.append(pair)

    while queue:
        n1, n2 = queue.popleft()
        if (n1, n2) in cancelled:
            stats.pairs_skipped_equivalence += 1
            continue
        children1 = left.children(n1)
        children2 = right.children(n2)

        # line 6: all (N1i, N2j) pairs
        for c1 in children1:
            for c2 in children2:
                enqueue((c1, c2))

        if n1 == VIRTUAL_ROOT or n2 == VIRTUAL_ROOT:
            # The virtual start node carries no assertion: behave as the
            # default case and keep both one-sided families reachable.
            if n1 != VIRTUAL_ROOT:
                for c2 in children2:
                    enqueue((n1, c2))
            if n2 != VIRTUAL_ROOT:
                for c1 in children1:
                    enqueue((c1, n2))
            continue

        # line 7: label test
        if side1.inherited[n1] & side2.labels[n2]:
            stats.pairs_skipped_labels += 1
            for c2 in children2:
                enqueue((n1, c2))  # line 34
            continue
        if side1.labels[n1] & side2.inherited[n2]:
            stats.pairs_skipped_labels += 1
            for c1 in children1:
                enqueue((c1, n2))  # line 35
            continue

        stats.pairs_checked += 1
        kind = assertions.kind_of(n1, n2)

        if kind is ClassKind.EQUIVALENCE:
            integrate_pair(
                result, assertions, left, right, n1, n2, stats, applied_derivations
            )
            # line 10: remove brother pairs — their relationship follows
            # from the local hierarchy around the merged node.  Pairs
            # with an explicitly declared assertion are kept: the paper
            # notes such declarations may exist and should be honoured
            # rather than silently dropped (cf. observation 3's caveat).
            for m2 in _brothers(right, n2):
                if assertions.lookup(n1, m2) is None:
                    cancelled.add((n1, m2))
            for m1 in _brothers(left, n1):
                if assertions.lookup(m1, n2) is None:
                    cancelled.add((m1, n2))
        elif kind is ClassKind.SUBSET:
            label = _path_labelling(
                n1, n2, left, right, assertions, result, side2,
                next(label_counter), stats, applied_derivations, flip=False,
            )
            side1.inherited[n1] = set(side1.inherited[n1]) | side1.labels[n1] | {label}
            # lines 14-15, transitively: "all the child nodes ... will
            # also possess l1·l2" — inheritance reaches every descendant.
            for descendant in left.descendants(n1):
                side1.inherited[descendant] |= side1.inherited[n1]
            for c2 in children2:
                enqueue((n1, c2))  # line 16
        elif kind is ClassKind.SUPERSET:
            label = _path_labelling(
                n2, n1, left, right, assertions, result, side1,
                next(label_counter), stats, applied_derivations, flip=True,
            )
            side2.inherited[n2] = set(side2.inherited[n2]) | side2.labels[n2] | {label}
            for descendant in right.descendants(n2):
                side2.inherited[descendant] |= side2.inherited[n2]
            for c1 in children1:
                enqueue((c1, n2))  # line 23
        elif kind in (ClassKind.EXCLUSION, ClassKind.DERIVATION):
            integrate_pair(
                result, assertions, left, right, n1, n2, stats, applied_derivations
            )
            # Observation 3: neither one-sided family is enqueued — below
            # an ∅/→ pair "no clear semantic relationships ... can be
            # defined".  The paper's safety valve: if the designer *did*
            # declare an assertion under such a pair, "inform the user
            # that something is strange" and honour the declaration.
            for strange_n1, strange_n2 in _declared_below(
                left, right, n1, n2, assertions
            ):
                result.note(
                    f"WARNING: assertion between {strange_n1!r} and "
                    f"{strange_n2!r} under the {kind} pair ({n1}, {n2}) — "
                    f"check it is intended (§6.1 observation 3); honoured."
                )
                enqueue((strange_n1, strange_n2))
        elif kind is ClassKind.INTERSECTION:
            integrate_pair(
                result, assertions, left, right, n1, n2, stats, applied_derivations
            )
            for c2 in children2:
                enqueue((n1, c2))  # line 31
            for c1 in children1:
                enqueue((c1, n2))
        else:  # no assertion — line 33
            for c2 in children2:
                enqueue((n1, c2))
            for c1 in children1:
                enqueue((c1, n2))

    _finish(result, left, right, stats)
    return result, stats


def _declared_below(
    left: Schema,
    right: Schema,
    n1: str,
    n2: str,
    assertions: AssertionSet,
) -> List[Pair]:
    """Pairs under (n1, n2) for which an assertion *is* declared.

    Checked only when (n1, n2) is an exclusion/derivation pair — the
    situation §6.1 flags as requiring user confirmation.  Cheap in
    practice: descendant sets under such pairs are small.
    """
    family1 = [n1] + sorted(left.descendants(n1))
    family2 = [n2] + sorted(right.descendants(n2))
    declared: List[Pair] = []
    for d1 in family1:
        for d2 in family2:
            if (d1, d2) != (n1, n2) and assertions.lookup(d1, d2) is not None:
                declared.append((d1, d2))
    return declared


def _brothers(schema: Schema, node: str) -> List[str]:
    """Brother nodes: other children of *node*'s parents (virtual root
    included, so top-level classes are brothers too)."""
    parents = schema.parents(node) or (VIRTUAL_ROOT,)
    brothers: List[str] = []
    for parent in parents:
        for child in schema.children(parent):
            if child != node and child not in brothers:
                brothers.append(child)
    return brothers


def _path_labelling(
    n1: str,
    n2: str,
    left: Schema,
    right: Schema,
    assertions: AssertionSet,
    result: IntegratedSchema,
    target_side: _Side,
    label: int,
    stats: IntegrationStats,
    applied_derivations: Set[int],
    flip: bool,
) -> int:
    """Algorithm ``path_labelling``: DFS from *n2* through the schema that
    contains it, labelling inclusion paths of *n1*.

    ``flip=False`` means n1 ∈ left / n2 ∈ right (a ``⊆`` pair); ``flip=
    True`` the reverse (a ``⊇`` pair).  *target_side* is the label state
    of n2's schema.  Returns the label used.
    """
    stats.dfs_calls += 1
    target_schema = right if not flip else left

    def kind_between(v: str) -> Optional[ClassKind]:
        return assertions.kind_of(n1, v) if not flip else assertions.kind_of(v, n1)

    def merge(v: str) -> None:
        lookup = assertions.lookup(n1, v) if not flip else assertions.lookup(v, n1)
        assert lookup is not None
        was_new = result.is_name(left.name, n1 if not flip else v) is None
        apply_equivalence(
            result, lookup.oriented_assertion(), left, right, assertions
        )
        if was_new:
            stats.classes_merged += 1

    def insert_link(sup: str) -> None:
        sub_schema = left if not flip else right
        sub_is = copy_local_class(result, sub_schema, n1).name
        sup_is = copy_local_class(result, target_schema, sup).name
        if sub_is != sup_is and not result.has_is_a_path(sub_is, sup_is):
            if result.add_is_a(sub_is, sup_is):
                stats.is_a_links_inserted += 1
                result.note(
                    f"path_labelling: is_a({sub_is}, {sup_is}) "
                    f"[deepest ⊆ target of {n1}]"
                )

    starred: Set[str] = set()
    visited: Dict[str, bool] = {}

    def undo(star_trail: List[str]) -> None:
        for node in star_trail:
            target_side.labels[node].discard(label)

    def visit(v: str, last_sub: Optional[str], star_trail: List[str]) -> bool:
        """DFS step; returns True when the subtree rooted at *v* contains
        an inclusion point (a deeper ⊆ or a merged ≡) for n1 — the signal
        a shallower ⊆ node uses to decide whether it is the deepest
        target (Principle 2's Fig 8(b) minimality, also on DAGs where
        branches share descendants)."""
        if v in visited:
            return visited[v]
        visited[v] = False
        stats.dfs_visits += 1
        kind = kind_between(v)
        children = target_schema.children(v)

        if kind is ClassKind.EQUIVALENCE:
            target_side.labels[v].add(label)
            merge(v)
            visited[v] = True
            return True  # the rest of the path is not searched (line 12)
        if kind is ClassKind.SUBSET and not flip or kind is ClassKind.SUPERSET and flip:
            # n1 ⊆ v — extend the inclusion path.
            target_side.labels[v].add(label)
            deeper = False
            for child in children:
                deeper = visit(child, v, []) or deeper
            if not deeper:
                insert_link(v)  # v is the deepest ⊆ target on this branch
            visited[v] = True
            return True
        if kind in _TERMINATING or (
            kind in (ClassKind.SUBSET, ClassKind.SUPERSET)
        ):
            # Incompatible assertion (lines 13-18): undo the * trail;
            # the deepest ⊆ node above links itself when no branch of its
            # subtree reports an inclusion point.
            undo(star_trail)
            if kind in (ClassKind.EXCLUSION, ClassKind.DERIVATION):
                integrate_pair(
                    result, assertions, left, right,
                    n1 if not flip else v, v if not flip else n1,
                    stats, applied_derivations,
                )
            return False
        # default: no assertion — mark with * (lines 19-25)
        starred.add(v)
        target_side.labels[v].add(label)
        if children:
            deeper = False
            for child in children:
                deeper = visit(child, last_sub, star_trail + [v]) or deeper
            if not deeper:
                undo([v])
            visited[v] = deeper
            return deeper
        undo(star_trail + [v])
        return False

    # n2 itself satisfies n1 ⊆ n2 (that is why we were called).
    target_side.labels[n2].add(label)
    stats.dfs_visits += 1
    visited[n2] = True
    deeper_below_n2 = False
    for child in target_schema.children(n2):
        deeper_below_n2 = visit(child, n2, []) or deeper_below_n2
    if not deeper_below_n2:
        insert_link(n2)
    return label


def _finish(
    result: IntegratedSchema,
    left: Schema,
    right: Schema,
    stats: IntegrationStats,
) -> None:
    for schema in (left, right):
        for class_name in schema.class_names:
            copy_local_class(result, schema, class_name)
    finalize_links(result, {left.name: left, right.name: right}, stats)
