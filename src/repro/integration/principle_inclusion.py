"""Principle 2: integration of inclusion assertions (§5, Fig 8).

The basic form inserts one is-a link::

    if S1.A ⊆ S2.B then insert is_a(IS(A), IS(B)) into S

The generalized form avoids redundant links when ``A`` is included in a
whole chain ``B1 ⊇ B2 ⊇ ... ⊇ Bn`` (``<Bn : Bn-1>`` locally): only
``is_a(IS(A), IS(Bn))`` — the link to the *most specific* superclass —
is generated (Fig 8(b)).  Example 7: with ``professor ⊆ human``,
``professor ⊆ employee`` and ``employee ⊆ human`` local to S2, only
``is_a(IS(professor), IS(employee))`` appears.

This module implements both forms statically (given the full assertion
set); the dynamic realization inside graph traversal — where assertion
gaps force the `*`-marking/backtracking machinery — is
:mod:`repro.integration.optimized`'s ``path_labelling``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..assertions.assertion_set import AssertionSet
from ..assertions.class_assertions import ClassAssertion
from ..assertions.kinds import ClassKind
from ..errors import IntegrationError
from ..model.schema import Schema
from .base import copy_local_class
from .result import IntegratedSchema


def apply_inclusion(
    result: IntegratedSchema,
    assertion: ClassAssertion,
    left: Schema,
    right: Schema,
) -> bool:
    """Insert the basic is-a link for one oriented ``A ⊆ B`` assertion.

    Both classes are placed (copied) first if necessary.  Returns True
    when a new link was inserted; False when it already existed or is
    implied by existing integrated links (transitivity check, which is
    what makes repeated application converge to the Fig 8(b) shape).
    """
    if assertion.kind is not ClassKind.SUBSET:
        raise IntegrationError(
            f"Principle 2 applies to oriented ⊆ assertions, got {assertion.kind}"
        )
    sub = copy_local_class(result, left, assertion.source.class_name).name
    sup = copy_local_class(result, right, assertion.target.class_name).name
    if result.has_is_a_path(sub, sup):
        return False
    return result.add_is_a(sub, sup)


def most_specific_superclasses(
    schema: Schema, candidates: Sequence[str]
) -> List[str]:
    """The ⊆-targets not implied by other targets via local is-a links.

    Given all ``B_i`` with ``A ⊆ B_i``, a target is *redundant* when some
    other target is its (local) descendant — the chain case of Fig 8.
    Returns the minimal targets, declaration order preserved.
    """
    kept: List[str] = []
    for candidate in candidates:
        implied = any(
            other != candidate and schema.is_subclass(other, candidate)
            for other in candidates
        )
        if not implied:
            kept.append(candidate)
    return kept


def apply_inclusions_generalized(
    result: IntegratedSchema,
    assertions: AssertionSet,
    left: Schema,
    right: Schema,
) -> List[Tuple[str, str]]:
    """Apply Principle 2's generalized form over the whole assertion set.

    Groups ⊆ assertions by subclass side, discards targets implied by
    more specific ones, and inserts one link per remaining target.
    Handles both orientations (``S1.A ⊆ S2.B`` and ``S2.B ⊆ S1.A``).
    Returns the links inserted.
    """
    inserted: List[Tuple[str, str]] = []
    inserted.extend(_apply_direction(result, assertions, left, right, flip=False))
    inserted.extend(_apply_direction(result, assertions, left, right, flip=True))
    return inserted


def _apply_direction(
    result: IntegratedSchema,
    assertions: AssertionSet,
    left: Schema,
    right: Schema,
    flip: bool,
) -> List[Tuple[str, str]]:
    sub_schema, sup_schema = (right, left) if flip else (left, right)
    targets_by_source: dict = {}
    for assertion in assertions:
        if assertion.kind is ClassKind.SUBSET and assertion.left_schema == sub_schema.name:
            oriented = assertion
        elif (
            assertion.kind is ClassKind.SUPERSET
            and assertion.left_schema == sup_schema.name
        ):
            oriented = assertion.flipped()
        else:
            continue
        targets_by_source.setdefault(oriented.source.class_name, []).append(
            oriented.target.class_name
        )

    inserted: List[Tuple[str, str]] = []
    for source_class, targets in targets_by_source.items():
        sub_name = copy_local_class(result, sub_schema, source_class).name
        for target_class in most_specific_superclasses(sup_schema, targets):
            sup_name = copy_local_class(result, sup_schema, target_class).name
            if not result.has_is_a_path(sub_name, sup_name):
                if result.add_is_a(sub_name, sup_name):
                    inserted.append((sub_name, sup_name))
                    result.note(
                        f"Principle 2: is_a({sub_name}, {sup_name}) "
                        f"[from {sub_schema.name}.{source_class} ⊆ "
                        f"{sup_schema.name}.{target_class}]"
                    )
    return inserted
