"""Attribute integration functions (AIFs) and ``re`` mappings — Principle 3.

For attribute pairs related by intersection, Principle 3 resolves value
conflicts with an *attribute integration function*::

    AIF_i_s_s(x, y) = (x + y) / 2     if oi1 = oi2 via data mapping,
                      Null            otherwise

and uses ``re(S_i, IS_attr)`` to find an integrated attribute's local
version in schema ``S_i``.  The paper notes both "have to be provided by
users or DBAs since their semantics entirely depend on individual
instants"; :class:`AIFRegistry` is that provision point, with a numeric
average as the out-of-the-box default (the paper's own example).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import IntegrationError

AIFCallable = Callable[[Any, Any], Any]


def average_aif(x: Any, y: Any) -> Any:
    """The paper's example AIF: ``(x + y) / 2``; Null on missing input."""
    if x is None or y is None:
        return None
    try:
        return (x + y) / 2
    except TypeError:
        raise IntegrationError(
            f"average AIF needs numeric inputs, got {x!r} and {y!r}; register "
            f"a custom AIF for this attribute pair"
        ) from None


def prefer_left_aif(x: Any, y: Any) -> Any:
    """A common alternative: keep the first schema's value when present."""
    return x if x is not None else y


@dataclasses.dataclass(frozen=True)
class AIF:
    """A named attribute integration function."""

    name: str
    function: AIFCallable

    def __call__(self, x: Any, y: Any) -> Any:
        return self.function(x, y)


class AIFRegistry:
    """User-supplied AIFs keyed by integrated attribute name.

    :meth:`resolve` falls back to the default (average) AIF, so the
    Example 8 behaviour — ``income_study_support`` averaging ``income``
    and ``study_support`` — works without registration.
    """

    def __init__(self, default: AIFCallable = average_aif) -> None:
        self._default = AIF("average", default)
        self._by_attribute: Dict[str, AIF] = {}

    def register(self, attribute_name: str, name: str, function: AIFCallable) -> AIF:
        aif = AIF(name, function)
        self._by_attribute[attribute_name] = aif
        return aif

    def resolve(self, attribute_name: str) -> AIF:
        return self._by_attribute.get(attribute_name, self._default)

    def registered(self) -> Tuple[str, ...]:
        return tuple(self._by_attribute)


class ReMapping:
    """The ``re(S_i, IS_attr)`` function of Principle 3.

    Maps an integrated attribute name back to its local
    ``(schema, class, attribute)`` version per schema.  Populated by the
    integration principles as they merge attributes; queried when
    value-set rules are evaluated against live databases.
    """

    def __init__(self) -> None:
        self._mapping: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def record(
        self,
        integrated_attribute: str,
        schema_name: str,
        class_name: str,
        attribute_name: str,
    ) -> None:
        self._mapping[(schema_name, integrated_attribute)] = (class_name, attribute_name)

    def resolve(
        self, schema_name: str, integrated_attribute: str
    ) -> Optional[Tuple[str, str]]:
        """``re(S_i, IS_attr)`` → (class, attribute) in *schema_name*, or None."""
        return self._mapping.get((schema_name, integrated_attribute))

    def __len__(self) -> int:
        return len(self._mapping)
