"""The integrated schema — output of the integration process (§5, §6).

An :class:`IntegratedSchema` holds everything the six principles
produce:

* **integrated classes** with provenance (which local classes an
  integrated class stands for — the ``IS(...)`` mapping);
* **integrated attributes** whose *value-set specifications* record how
  ``value_set(IS_ab)`` derives from local value sets (union, difference,
  intersection, concatenation, AIF application) — these are the
  extensional side of Principle 1/3 and evaluate lazily against live
  databases through a :class:`ValueContext`;
* **is-a links** (Principle 2/6) and **aggregation links** with resolved
  cardinality constraints (Principle 6);
* **derivation rules** (Principles 3, 4, 5) — evaluable rules feed the
  engines; inherently disjunctive rules (Principle 4's generalized form)
  are kept as documentation with ``evaluable=False``;
* the ``re``-mapping and AIF registry of Principle 3, and a build log.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import IntegrationError, UnknownClassError
from ..logic.rules import Rule
from ..model.aggregations import Cardinality
from ..model.schema import Schema
from .aif import AIFRegistry, ReMapping
from .concatenation import concatenation
from .naming import NamePolicy

LocalAttr = Tuple[str, str, str]  # (schema, class, attribute)
Concept = Tuple[str, str]  # (schema, class)


class ValueContext:
    """What value-set evaluation needs from the federation.

    ``value_set`` returns the current non-null value set of a local
    attribute; ``paired_values`` returns ``(x, y)`` pairs for objects the
    data mappings identify as the same real-world entity (the ``oi1 =
    oi2`` side condition of Principle 1/3).  The federation layer
    implements this against live agents; tests implement it with dicts.
    """

    def value_set(self, schema: str, class_name: str, attribute: str) -> Set[Any]:
        raise NotImplementedError

    def paired_values(self, left: LocalAttr, right: LocalAttr) -> List[Tuple[Any, Any]]:
        raise NotImplementedError


class ValueSetOp(enum.Enum):
    """How an integrated attribute's value set derives from local ones."""

    LOCAL = "local"  # value_set(a)
    UNION = "union"  # value_set(a) ∪ value_set(b)
    DIFFERENCE = "difference"  # value_set(a) / value_set(b)
    INTERSECTION = "intersection"  # value_set(a) ∩ value_set(b)
    CONCATENATION = "concatenation"  # cancatenation(A·a, B·b), paired
    AIF = "aif"  # AIF(x, y) over paired values


@dataclasses.dataclass(frozen=True)
class ValueSetSpec:
    """A lazy definition of ``value_set(IS_attr)``."""

    op: ValueSetOp
    left: LocalAttr
    right: Optional[LocalAttr] = None
    aif_attribute: Optional[str] = None  # key into the AIF registry
    separator: str = " "

    def evaluate(self, context: ValueContext, aifs: AIFRegistry) -> Set[Any]:
        """Compute the value set against live data."""
        left_values = context.value_set(*self.left)
        if self.op is ValueSetOp.LOCAL:
            return left_values
        if self.right is None:
            raise IntegrationError(f"{self.op} spec needs a right side")
        if self.op is ValueSetOp.UNION:
            return left_values | context.value_set(*self.right)
        if self.op is ValueSetOp.DIFFERENCE:
            return left_values - context.value_set(*self.right)
        if self.op is ValueSetOp.INTERSECTION:
            return left_values & context.value_set(*self.right)
        pairs = context.paired_values(self.left, self.right)
        if self.op is ValueSetOp.CONCATENATION:
            return {
                value
                for x, y in pairs
                if (value := concatenation(x, y, self.separator)) is not None
            }
        if self.op is ValueSetOp.AIF:
            aif = aifs.resolve(self.aif_attribute or "")
            return {value for x, y in pairs if (value := aif(x, y)) is not None}
        raise IntegrationError(f"unhandled value-set op {self.op}")  # pragma: no cover

    def describe(self) -> str:
        def attr(local: LocalAttr) -> str:
            return ".".join(local)

        if self.op is ValueSetOp.LOCAL:
            return f"value_set({attr(self.left)})"
        assert self.right is not None
        symbol = {
            ValueSetOp.UNION: "∪",
            ValueSetOp.DIFFERENCE: "/",
            ValueSetOp.INTERSECTION: "∩",
        }.get(self.op)
        if symbol:
            return f"value_set({attr(self.left)}) {symbol} value_set({attr(self.right)})"
        if self.op is ValueSetOp.CONCATENATION:
            return f"cancatenation({attr(self.left)}, {attr(self.right)})"
        return f"AIF_{self.aif_attribute}({attr(self.left)}, {attr(self.right)})"


@dataclasses.dataclass
class IntegratedAttribute:
    """An attribute of an integrated class, with provenance and value spec."""

    name: str
    spec: ValueSetSpec
    origins: Tuple[LocalAttr, ...]
    note: str = ""

    def __str__(self) -> str:
        return f"{self.name} := {self.spec.describe()}"


@dataclasses.dataclass
class IntegratedAggregation:
    """An aggregation function of an integrated class."""

    name: str
    range_class: str  # integrated class name
    cardinality: Cardinality
    origins: Tuple[LocalAttr, ...]

    def __str__(self) -> str:
        return f"{self.name}: {self.range_class} with {self.cardinality}"


@dataclasses.dataclass
class IntegratedClass:
    """A class of the integrated schema.

    ``virtual`` classes (Principle 3/5 products like ``IS_AB``) have no
    direct extent: their membership is defined by rules.
    """

    name: str
    origins: Tuple[Concept, ...] = ()
    virtual: bool = False
    attributes: Dict[str, IntegratedAttribute] = dataclasses.field(default_factory=dict)
    aggregations: Dict[str, IntegratedAggregation] = dataclasses.field(default_factory=dict)

    def add_attribute(self, attribute: IntegratedAttribute) -> IntegratedAttribute:
        if attribute.name in self.attributes or attribute.name in self.aggregations:
            raise IntegrationError(
                f"integrated class {self.name!r} already has member "
                f"{attribute.name!r}"
            )
        self.attributes[attribute.name] = attribute
        return attribute

    def add_aggregation(self, aggregation: IntegratedAggregation) -> IntegratedAggregation:
        if (
            aggregation.name in self.attributes
            or aggregation.name in self.aggregations
        ):
            raise IntegrationError(
                f"integrated class {self.name!r} already has member "
                f"{aggregation.name!r}"
            )
        self.aggregations[aggregation.name] = aggregation
        return aggregation

    def describe(self) -> str:
        flags = " (virtual)" if self.virtual else ""
        origin_text = ", ".join(f"{s}.{c}" for s, c in self.origins) or "—"
        lines = [f"class {self.name}{flags}  [from {origin_text}]"]
        for attribute in self.attributes.values():
            lines.append(f"  {attribute}")
        for aggregation in self.aggregations.values():
            lines.append(f"  {aggregation}")
        return "\n".join(lines)


@dataclasses.dataclass
class IntegratedRule:
    """A rule of the integrated schema, with evaluability flag."""

    rule: Rule
    principle: str
    evaluable: bool = True

    def __str__(self) -> str:
        marker = "" if self.evaluable else "  (disjunctive, documentation only)"
        return f"{self.rule}{marker}"


class IntegratedSchema:
    """The global schema under construction / as produced."""

    def __init__(self, name: str, policy: Optional[NamePolicy] = None) -> None:
        self.name = name
        self.policy = policy or NamePolicy()
        self.classes: Dict[str, IntegratedClass] = {}
        self._is_map: Dict[Concept, str] = {}
        self._is_a: Set[Tuple[str, str]] = set()
        self.rules: List[IntegratedRule] = []
        self.re_mapping = ReMapping()
        self.aifs = AIFRegistry()
        self.log: List[str] = []

    # ------------------------------------------------------------------
    # classes and the IS(...) map
    # ------------------------------------------------------------------
    def add_class(self, integrated: IntegratedClass) -> IntegratedClass:
        if integrated.name in self.classes:
            raise IntegrationError(
                f"integrated schema already has class {integrated.name!r}"
            )
        self.classes[integrated.name] = integrated
        for origin in integrated.origins:
            self._is_map[origin] = integrated.name
        return integrated

    def map_origin(self, schema: str, class_name: str, integrated_name: str) -> None:
        """Record ``IS(schema.class) = integrated_name`` for an extra origin."""
        if integrated_name not in self.classes:
            raise UnknownClassError(integrated_name, self.name)
        self._is_map[(schema, class_name)] = integrated_name
        existing = self.classes[integrated_name]
        if (schema, class_name) not in existing.origins:
            existing.origins = existing.origins + ((schema, class_name),)

    def is_name(self, schema: str, class_name: str) -> Optional[str]:
        """``IS(schema.class)`` — the integrated name, or None if unplaced."""
        return self._is_map.get((schema, class_name))

    def require_is(self, schema: str, class_name: str) -> str:
        name = self.is_name(schema, class_name)
        if name is None:
            raise IntegrationError(
                f"IS({schema}.{class_name}) is not defined yet"
            )
        return name

    def cls(self, name: str) -> IntegratedClass:
        try:
            return self.classes[name]
        except KeyError:
            raise UnknownClassError(name, self.name) from None

    def __contains__(self, name: str) -> bool:
        return name in self.classes

    def __iter__(self) -> Iterator[IntegratedClass]:
        return iter(self.classes.values())

    def __len__(self) -> int:
        return len(self.classes)

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def add_is_a(self, child: str, parent: str) -> bool:
        """Insert ``is_a(child, parent)``; True when new."""
        for name in (child, parent):
            if name not in self.classes:
                raise UnknownClassError(name, self.name)
        if child == parent:
            raise IntegrationError(f"is_a({child}, {parent}) is reflexive")
        link = (child, parent)
        if link in self._is_a:
            return False
        self._is_a.add(link)
        return True

    def remove_is_a(self, child: str, parent: str) -> bool:
        """Remove a redundant link (§6.2); True when it existed."""
        try:
            self._is_a.remove((child, parent))
            return True
        except KeyError:
            return False

    def is_a_links(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted(self._is_a))

    def parents(self, class_name: str) -> Tuple[str, ...]:
        return tuple(sorted(p for c, p in self._is_a if c == class_name))

    def children(self, class_name: str) -> Tuple[str, ...]:
        return tuple(sorted(c for c, p in self._is_a if p == class_name))

    def has_is_a_path(self, descendant: str, ancestor: str) -> bool:
        """Reachability along integrated is-a links (redundancy checks)."""
        if descendant == ancestor:
            return True
        frontier = [descendant]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            for parent in self.parents(current):
                if parent == ancestor:
                    return True
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return False

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    def add_rule(self, rule: Rule, principle: str, evaluable: bool = True) -> IntegratedRule:
        integrated = IntegratedRule(rule, principle, evaluable)
        self.rules.append(integrated)
        return integrated

    def evaluable_rules(self) -> List[Rule]:
        return [r.rule for r in self.rules if r.evaluable]

    def rules_by_principle(self, principle: str) -> List[IntegratedRule]:
        return [r for r in self.rules if r.principle == principle]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def note(self, message: str) -> None:
        self.log.append(message)

    def describe(self) -> str:
        lines = [f"integrated schema {self.name}:"]
        for integrated in self.classes.values():
            lines.append(integrated.describe())
        if self._is_a:
            lines.append("is-a links:")
            for child, parent in self.is_a_links():
                lines.append(f"  is_a({child}, {parent})")
        if self.rules:
            lines.append("rules:")
            for rule in self.rules:
                lines.append(f"  {rule}")
        return "\n".join(lines)

    def to_model_schema(self) -> Schema:
        """Project onto a plain :class:`~repro.model.schema.Schema`.

        Value-set specs and rules do not survive the projection — this
        is for reusing the hierarchy/shape in further integration rounds
        (the accumulation strategy of Fig 2) and for display.
        """
        from ..model.classes import ClassDef
        from ..model.datatypes import DataType

        schema = Schema(self.name)
        for integrated in self.classes.values():
            class_def = ClassDef(integrated.name)
            for attribute in integrated.attributes.values():
                class_def.attr(attribute.name, DataType.STRING)
            for aggregation in integrated.aggregations.values():
                class_def.agg(
                    aggregation.name,
                    aggregation.range_class,
                    aggregation.cardinality,
                )
            schema.add_class(class_def)
        for child, parent in self.is_a_links():
            schema.cls(child).add_parent(parent)
        return schema
