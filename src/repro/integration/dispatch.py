"""Per-pair integration dispatch shared by the §6 algorithms.

Both ``naive_schema_integration`` and ``schema_integration`` perform the
same action once a pair ``(N1, N2)`` is checked: look the assertion up
and apply the matching principle.  :func:`integrate_pair` is that switch
(lines 8-33 of the optimized algorithm, line 7 of the naive one), shared
so the two algorithms differ *only* in their traversal/pruning control —
which is precisely what the §6.3 comparison measures.
"""

from __future__ import annotations

from typing import Optional, Set

from ..assertions.assertion_set import AssertionSet
from ..assertions.kinds import ClassKind
from ..model.schema import Schema
from .principle_derivation import apply_derivation
from .principle_disjoint import apply_disjoint
from .principle_equivalence import apply_equivalence
from .principle_inclusion import apply_inclusion
from .principle_intersection import apply_intersection
from .result import IntegratedSchema
from .stats import IntegrationStats


def integrate_pair(
    result: IntegratedSchema,
    assertions: AssertionSet,
    left: Schema,
    right: Schema,
    n1: str,
    n2: str,
    stats: IntegrationStats,
    applied_derivations: Set[int],
) -> Optional[ClassKind]:
    """Integrate the checked pair ``(n1, n2)``; returns the kind found.

    *applied_derivations* tracks derivation-assertion identities so a
    multi-source assertion fires once even though it matches several
    pairs.  Rule/merge counters are updated on *stats*.
    """
    lookup = assertions.lookup(n1, n2)
    if lookup is None:
        return None
    kind = lookup.kind
    # Derivation assertions are directional and are dispatched on their
    # own declared orientation below; all other kinds re-orient.
    oriented = (
        lookup.assertion
        if kind is ClassKind.DERIVATION
        else lookup.oriented_assertion()
    )

    if kind is ClassKind.EQUIVALENCE:
        # apply_equivalence is idempotent and absorbs transitive
        # equivalences into an existing merge — always dispatch.
        newly_merged = result.is_name(left.name, n1) is None or (
            result.is_name(right.name, n2) is None
        )
        apply_equivalence(result, oriented, left, right, assertions)
        if newly_merged:
            stats.classes_merged += 1
    elif kind is ClassKind.SUBSET:
        if apply_inclusion(result, oriented, left, right):
            stats.is_a_links_inserted += 1
    elif kind is ClassKind.SUPERSET:
        if apply_inclusion(result, oriented.flipped(), right, left):
            stats.is_a_links_inserted += 1
    elif kind is ClassKind.INTERSECTION:
        before = len(result.rules)
        apply_intersection(result, oriented, left, right, assertions)
        stats.rules_generated += len(result.rules) - before
    elif kind is ClassKind.EXCLUSION:
        before = len(result.rules)
        apply_disjoint(result, oriented, left, right, assertions)
        stats.rules_generated += len(result.rules) - before
    elif kind is ClassKind.DERIVATION:
        for assertion in assertions.derivations_for(n1, n2):
            if id(assertion) in applied_derivations:
                continue
            applied_derivations.add(id(assertion))
            before = len(result.rules)
            if assertion.left_schema == left.name:
                apply_derivation(result, assertion, left, right)
            else:
                apply_derivation(result, assertion, right, left)
            stats.rules_generated += len(result.rules) - before
    return kind
