"""Principle 5: integration of derivation assertions (§5, Examples 9-11).

Given ``S1(A1, ..., An) → S2.B``, the principle constructs a derivation
rule ``B' ⇐ A1', ..., An', p1, ..., pl`` whose O-terms share variables
exactly where the assertion's correspondences link paths::

    if S1(A1, ..., An) → S2.B then
        construct an assertion graph G;
        mark each connected subgraph Gj with xj;
        construct a hyperedge per predicate pi;
        for each Gj: generate reverse substitution θj;
        for each he(pi): generate reverse substitution δi;
        generate  Bθ1...θj ⇐ {A1, ..., An}θ1...θj, {p1, ...}δ1...δi

Worked through Example 9 this yields the paper's uncle rule; through the
decomposed Fig 10 assertions, the car-price rules of Example 10; and for
class-to-path equivalences (``S1.Book ≡ S2.Author.book``), the simpler
aggregation-style rules of Example 11.

Implementation notes (also recorded in DESIGN.md §5):

* decomposition (the paper's manual pre-step) is automated via
  :func:`repro.assertions.decompose.decompose`;
* reverse substitutions for hyperedge predicates are keyed by the node's
  *full path* rather than its bare attribute name — the paper's keying by
  name is ambiguous when two classes share an attribute name; the
  mechanism is otherwise identical;
* a head object variable that does not occur in the body (the virtual
  ``o1`` of the uncle rule) is skolemized at compile time so the rule is
  evaluable (see :meth:`repro.logic.rules.Rule.compile`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..assertions.class_assertions import ClassAssertion
from ..assertions.decompose import decompose
from ..assertions.graph import AssertionGraph, Hyperedge
from ..assertions.kinds import ClassKind
from ..assertions.paths import Path
from ..errors import IntegrationError
from ..logic.atoms import Comparison
from ..logic.oterms import OTerm
from ..logic.reverse_substitution import ReverseSubstitution
from ..logic.rules import BodyItem, Rule
from ..logic.safety import violations
from ..logic.terms import Constant, Variable, VariableFactory
from ..model.schema import Schema
from .base import copy_local_class
from .result import IntegratedSchema

Key = Union[Constant, Variable]


class _Templates:
    """O-term templates for the classes of one derivation assertion.

    Each class gets an object variable (``o1`` for the target, ``o2``...
    for sources) and one binding per assertion-graph node rooted at it;
    the per-node value variables are placeholders that the component
    reverse substitutions replace wholesale.
    """

    def __init__(
        self,
        assertion: ClassAssertion,
        graph: AssertionGraph,
        result: IntegratedSchema,
    ) -> None:
        self.node_key: Dict[Path, Key] = {}
        object_counter = 1
        self._templates: Dict[Tuple[str, str], OTerm] = {}

        concepts = [(assertion.right_schema, assertion.target_class)]
        concepts += [(p.schema, p.class_name) for p in assertion.sources]
        placeholders = VariableFactory(prefix="v")
        for schema_name, class_name in concepts:
            integrated_name = result.require_is(schema_name, class_name)
            object_var = Variable(f"o{object_counter}")
            object_counter += 1
            bindings: List[Tuple[str, Variable]] = []
            for node in graph.nodes:
                if node.schema != schema_name or node.class_name != class_name:
                    continue
                if node.is_class_path:
                    self.node_key[node] = object_var
                    continue
                if node.name_reference:
                    # The node denotes the member *name* itself; its
                    # binding key is that name constant (paper, step (i)).
                    self.node_key[node] = Constant(node.canonical())
                    continue
                value_var = placeholders.fresh_named(
                    node.descriptor.replace(".", "_")
                )
                bindings.append((node.descriptor, value_var))
                self.node_key[node] = value_var
            self._templates[(schema_name, class_name)] = OTerm(
                object_var, integrated_name, tuple(bindings)
            )

    def template(self, schema_name: str, class_name: str) -> OTerm:
        return self._templates[(schema_name, class_name)]


def component_substitution(
    component: Tuple[Path, ...],
    templates: _Templates,
    variable: Variable,
) -> ReverseSubstitution:
    """Method (i): the reverse substitution θ for one connected subgraph.

    Every node's binding key (its placeholder value variable, its object
    variable for class-path nodes, or its name constant) maps to the
    component's marker variable.
    """
    bindings: Dict[Key, Variable] = {}
    for node in component:
        key = templates.node_key[node]
        bindings[key] = variable
    return ReverseSubstitution(bindings)


def hyperedge_substitution(
    hyperedge: Hyperedge,
    component_of: Dict[Path, Variable],
) -> ReverseSubstitution:
    """Method (ii): the reverse substitution δ for one hyperedge.

    Maps each member node's *path constant* — the token the predicate
    mentions — to the variable marking that node's component, so the
    predicate shares the variable the O-terms use.
    """
    bindings: Dict[Key, Variable] = {}
    for node in hyperedge.nodes:
        bindings[Constant(node.canonical())] = component_of[node]
    return ReverseSubstitution(bindings)


def build_rule(
    assertion: ClassAssertion,
    result: IntegratedSchema,
    variables: Optional[VariableFactory] = None,
) -> Rule:
    """Generate the derivation rule of one *decomposed* assertion."""
    graph = AssertionGraph(assertion)
    templates = _Templates(assertion, graph, result)
    variables = variables or VariableFactory(prefix="x")

    component_of: Dict[Path, Variable] = {}
    thetas: List[ReverseSubstitution] = []
    for component in graph.components():
        marker = variables.fresh()
        thetas.append(component_substitution(component, templates, marker))
        for node in component:
            component_of[node] = marker

    head = templates.template(assertion.right_schema, assertion.target_class)
    body_oterms = [
        templates.template(path.schema, path.class_name) for path in assertion.sources
    ]
    for theta in thetas:
        head = head.apply_reverse(theta)
        body_oterms = [oterm.apply_reverse(theta) for oterm in body_oterms]

    predicates: List[Comparison] = []
    for hyperedge in graph.hyperedges:
        delta = hyperedge_substitution(hyperedge, component_of)
        raw = Comparison(
            hyperedge.op,
            Constant(hyperedge.nodes[0].canonical()),
            Constant(hyperedge.constant),
        )
        predicates.append(raw.apply_reverse(delta))

    body: List[BodyItem] = [BodyItem(oterm) for oterm in body_oterms]
    body += [BodyItem(predicate) for predicate in predicates]
    return Rule.of(head, body, name=f"derivation:{assertion.head()}")


def apply_derivation(
    result: IntegratedSchema,
    assertion: ClassAssertion,
    left: Schema,
    right: Schema,
    variables: Optional[VariableFactory] = None,
) -> List[Rule]:
    """Apply Principle 5 to one derivation assertion.

    Decomposes first, places all involved classes, generates one rule per
    decomposed assertion, safety-checks each (unsafe or schematic rules
    are kept with ``evaluable=False`` and a logged explanation), and
    returns the generated rules.
    """
    if assertion.kind is not ClassKind.DERIVATION:
        raise IntegrationError(
            f"Principle 5 applies to derivation assertions, got {assertion.kind}"
        )
    for path in assertion.sources:
        copy_local_class(result, left, path.class_name)
    copy_local_class(result, right, assertion.target_class)

    rules: List[Rule] = []
    for part in decompose(assertion):
        rule = build_rule(part, result, variables)
        evaluable = True
        problems: List[str] = []
        for compiled in _try_compile(rule):
            problems.extend(violations(compiled))
        if _is_schematic(rule):
            evaluable = False
            result.note(
                f"Principle 5: rule for {part.head()} is schematic "
                f"(name variables remain); kept as documentation"
            )
        elif problems:
            evaluable = False
            result.note(
                f"Principle 5: rule for {part.head()} is unsafe: "
                + "; ".join(problems)
            )
        result.add_rule(rule, principle="P5", evaluable=evaluable)
        rules.append(rule)
        result.note(f"Principle 5: {rule}")
    return rules


def _is_schematic(rule: Rule) -> bool:
    for element in rule.heads:
        if isinstance(element, OTerm) and element.is_schematic():
            return True
    for item in rule.body:
        if isinstance(item.element, OTerm) and item.element.is_schematic():
            return True
    return False


def _try_compile(rule: Rule):
    try:
        return rule.compile()
    except Exception:  # schematic rules cannot compile; handled separately
        return []
