"""Algorithm ``naive_schema_integration`` (§6.1).

The baseline: breadth-first search over *pairs* of nodes, checking every
pair against the assertion set with no pruning::

    Q := (s1, s2)
    while Q not empty:
        (N1, N2) := pop(Q)
        put all pairs (N1i, N2j), (N1, N2j), (N1i, N2) into Q
        do the integration according to the assertion between N1 and N2

With O(n) nodes per schema this checks O(n²) pairs — the quantity the
§6.3 analysis (and benchmark E-C1) compares against the optimized
algorithm.  A visited-set keeps each pair checked once (the paper's
queue would otherwise re-enqueue pairs exponentially; the count of
*distinct* checks is unchanged).

:func:`sull_kashyap_style` is the [33]-flavoured variant the paper
contrasts in §6: traversal of S1 with a full scan of S2 per node, and
one is-a link inserted per inclusion assertion with no Fig 8 reduction —
the baseline for the link-redundancy benchmark (E-L).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set, Tuple

from ..assertions.assertion_set import AssertionSet
from ..model.schema import Schema, VIRTUAL_ROOT
from .base import copy_local_class
from .dispatch import integrate_pair
from .link_integration import finalize_links
from .naming import NamePolicy
from .result import IntegratedSchema
from .stats import IntegrationStats


def naive_schema_integration(
    left: Schema,
    right: Schema,
    assertions: AssertionSet,
    policy: Optional[NamePolicy] = None,
    name: str = "",
    integrate_links: bool = True,
) -> Tuple[IntegratedSchema, IntegrationStats]:
    """Run the naive algorithm; returns (integrated schema, stats)."""
    result = IntegratedSchema(name or f"IS({left.name},{right.name})", policy)
    stats = IntegrationStats()
    applied_derivations: Set[int] = set()

    queue: deque = deque([(VIRTUAL_ROOT, VIRTUAL_ROOT)])
    visited: Set[Tuple[str, str]] = {(VIRTUAL_ROOT, VIRTUAL_ROOT)}

    while queue:
        n1, n2 = queue.popleft()
        children1 = left.children(n1) if n1 == VIRTUAL_ROOT else left.children(n1)
        children2 = right.children(n2)

        for c1 in children1:
            for c2 in children2:
                _enqueue(queue, visited, stats, (c1, c2))
        if n1 != VIRTUAL_ROOT:
            for c2 in children2:
                _enqueue(queue, visited, stats, (n1, c2))
        if n2 != VIRTUAL_ROOT:
            for c1 in children1:
                _enqueue(queue, visited, stats, (c1, n2))

        if n1 == VIRTUAL_ROOT or n2 == VIRTUAL_ROOT:
            continue
        stats.pairs_checked += 1
        integrate_pair(
            result, assertions, left, right, n1, n2, stats, applied_derivations
        )

    _finish(result, left, right, stats, integrate_links)
    return result, stats


def sull_kashyap_style(
    left: Schema,
    right: Schema,
    assertions: AssertionSet,
    policy: Optional[NamePolicy] = None,
    name: str = "",
) -> Tuple[IntegratedSchema, IntegrationStats]:
    """The [33]-style baseline: separate traversals, no link reduction.

    "There, traversal of the two input graphs is completely separated ...
    for each node in S1, the entire S2 is searched."  Every inclusion
    assertion contributes its own is-a link (no Fig 8(b) minimization and
    no §6.2 transitive reduction), so the link-redundancy benchmark can
    count what the paper's approach avoids.
    """
    result = IntegratedSchema(name or f"IS({left.name},{right.name})", policy)
    stats = IntegrationStats()
    applied_derivations: Set[int] = set()

    for n1 in left.bfs_order():
        for n2 in right.bfs_order():
            stats.pairs_checked += 1
            integrate_pair(
                result, assertions, left, right, n1, n2, stats, applied_derivations
            )

    _finish(result, left, right, stats, integrate_links=False)
    return result, stats


def _enqueue(queue, visited, stats, pair) -> None:
    if pair in visited:
        stats.pairs_skipped_visited += 1
        return
    visited.add(pair)
    stats.pairs_enqueued += 1
    queue.append(pair)


def _finish(
    result: IntegratedSchema,
    left: Schema,
    right: Schema,
    stats: IntegrationStats,
    integrate_links: bool,
) -> None:
    """Defaults and link pass shared with the optimized algorithm."""
    for schema in (left, right):
        for class_name in schema.class_names:
            copy_local_class(result, schema, class_name)
    finalize_links(
        result,
        {left.name: left, right.name: right},
        stats,
        reduce_is_a=integrate_links,
    )
