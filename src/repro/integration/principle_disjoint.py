"""Principle 4: integration of disjoint (exclusion) assertions (§5).

An assertion ``S1.A ∅ S2.B`` "is meaningful only in the case where there
are two object classes A' and B' such that ``S1.A' ≡ S2.B'`` and
``<A: A'>`` and ``<B: B'>`` hold" — disjointness is declared between
subclasses of a merged common superclass (Fig 4(d): man ∅ woman under
person ≡ human).  Three rule shapes arise:

1. the simple complement rule::

       <x: IS(S2.B)> ⇐ <x: IS(S1.A')>, ¬<x: IS(S1.A)>

2. the generalized (disjunctive) rule for families
   ``S1.Ai ∅ S2.Bj`` — disjunctive heads are not evaluable by a datalog
   engine, so the rule is recorded with ``evaluable=False`` unless the
   head is a single class;

3. the reverse-aggregation variant: ``f ℵ g`` between the disjoint
   classes produces the symmetric pair of rules that define the merged
   function ``IS_fg`` in both directions (man.spouse / woman.spouse).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..assertions.assertion_set import AssertionSet
from ..assertions.class_assertions import ClassAssertion
from ..assertions.kinds import AggregationKind, ClassKind
from ..errors import IntegrationError
from ..logic.oterms import OTerm
from ..logic.rules import BodyItem, Rule
from ..model.schema import Schema
from .base import copy_local_class
from .result import IntegratedSchema


def find_equivalent_parents(
    assertions: AssertionSet,
    left: Schema,
    right: Schema,
    a_name: str,
    b_name: str,
) -> Optional[Tuple[str, str]]:
    """The context pair (A', B') required by Principle 4, or None.

    Searches the local ancestor sets of A and B for a pair related by an
    equivalence assertion; nearer ancestors win.
    """
    a_line = _by_depth(left, a_name)
    b_ancestors = set(right.ancestors(b_name))
    for a_parent in a_line:
        for b_parent in sorted(b_ancestors):
            if assertions.kind_of(a_parent, b_parent) is ClassKind.EQUIVALENCE:
                return (a_parent, b_parent)
    return None


def _by_depth(schema: Schema, class_name: str) -> List[str]:
    """Strict ancestors of *class_name*, nearest first."""
    seen: List[str] = []
    frontier = list(schema.parents(class_name))
    while frontier:
        next_frontier: List[str] = []
        for parent in frontier:
            if parent not in seen:
                seen.append(parent)
                next_frontier.extend(schema.parents(parent))
        frontier = next_frontier
    return seen


def apply_disjoint(
    result: IntegratedSchema,
    assertion: ClassAssertion,
    left: Schema,
    right: Schema,
    assertions: Optional[AssertionSet] = None,
) -> List[Rule]:
    """Apply Principle 4 to one oriented ``A ∅ B`` assertion.

    Generates the simple complement rule when the (A', B') context exists
    and the merged parent is already placed, plus reverse-aggregation
    rules for any ℵ correspondences.  Without a context the assertion
    only forces both classes to be copied (and a note is logged) — the
    paper calls such an assertion meaningless.
    """
    if assertion.kind is not ClassKind.EXCLUSION:
        raise IntegrationError(
            f"Principle 4 applies to exclusion assertions, got {assertion.kind}"
        )
    a_name = assertion.source.class_name
    b_name = assertion.target.class_name
    is_a = copy_local_class(result, left, a_name)
    is_b = copy_local_class(result, right, b_name)
    generated: List[Rule] = []

    context = (
        find_equivalent_parents(assertions, left, right, a_name, b_name)
        if assertions is not None
        else None
    )
    if context is not None:
        a_parent, b_parent = context
        merged_parent = result.is_name(left.name, a_parent)
        if merged_parent is not None:
            rule = Rule.of(
                OTerm.of("?x", is_b.name),
                [
                    BodyItem(OTerm.of("?x", merged_parent)),
                    BodyItem(OTerm.of("?x", is_a.name), positive=False),
                ],
                name=f"{is_b.name}-complement",
            )
            result.add_rule(rule, principle="P4")
            generated.append(rule)
            result.note(
                f"Principle 4: {is_b.name} ⇐ {merged_parent} \\ {is_a.name} "
                f"[context {a_parent} ≡ {b_parent}]"
            )
    else:
        result.note(
            f"Principle 4: no equivalent-parent context for "
            f"{left.name}.{a_name} ∅ {right.name}.{b_name}; classes copied only"
        )

    # ------------------------------------------------------------------
    # reverse-aggregation variant
    # ------------------------------------------------------------------
    for corr in assertion.aggregation_corrs:
        if corr.kind is not AggregationKind.REVERSE:
            continue
        merged_fg = result.policy.merged(corr.left_function, corr.right_function)
        # The heads derive only the merged function's *values* — the
        # paper's own IS_fg definition maps existing objects, and letting
        # the reverse rule re-derive class membership would put negation
        # (from the complement rule) inside a recursive cycle.
        from ..logic.atoms import Atom
        from ..logic.oterms import att_predicate

        forward = Rule.of(
            Atom.of(att_predicate(is_b.name, merged_fg), "?x", "?y"),
            [OTerm.of("?y", is_a.name, {merged_fg: "?x"})],
            name=f"{merged_fg}-reverse-fwd",
        )
        backward = Rule.of(
            Atom.of(att_predicate(is_a.name, merged_fg), "?y", "?x"),
            [OTerm.of("?x", is_b.name, {merged_fg: "?y"})],
            name=f"{merged_fg}-reverse-bwd",
        )
        result.add_rule(forward, principle="P4")
        result.add_rule(backward, principle="P4")
        generated.extend((forward, backward))
        result.note(
            f"Principle 4: reverse aggregation {corr.left_function} ℵ "
            f"{corr.right_function} merged as {merged_fg} (symmetric rules)"
        )
    return generated


def apply_disjoint_family(
    result: IntegratedSchema,
    family: Sequence[ClassAssertion],
    left: Schema,
    right: Schema,
    assertions: AssertionSet,
) -> Optional[Rule]:
    """The generalized rule for ``S1.Ai ∅ S2.Bj`` families (§5).

    All assertions must share one equivalent-parent context (A, B) with
    ``IS(S1.A) ≡ IS(S2.B)`` already merged.  Produces::

        <x: IS(B1)> ∨ ... ∨ <x: IS(Bm)> ⇐
            <x: IS(A)>, ¬<x: IS(A1)>, ..., ¬<x: IS(An)>

    which is recorded ``evaluable=False`` when m > 1 (disjunction) and
    evaluable otherwise.  Returns the rule, or None when no shared
    context exists.
    """
    if not family:
        return None
    contexts = set()
    a_classes: List[str] = []
    b_classes: List[str] = []
    for assertion in family:
        context = find_equivalent_parents(
            assertions, left, right,
            assertion.source.class_name, assertion.target.class_name,
        )
        if context is None:
            return None
        contexts.add(context)
        if assertion.source.class_name not in a_classes:
            a_classes.append(assertion.source.class_name)
        if assertion.target.class_name not in b_classes:
            b_classes.append(assertion.target.class_name)
    if len(contexts) != 1:
        return None
    a_parent, _ = next(iter(contexts))
    merged_parent = result.is_name(left.name, a_parent)
    if merged_parent is None:
        return None

    heads = tuple(
        OTerm.of("?x", copy_local_class(result, right, b).name) for b in b_classes
    )
    body: List[BodyItem] = [BodyItem(OTerm.of("?x", merged_parent))]
    for a_class in a_classes:
        body.append(
            BodyItem(
                OTerm.of("?x", copy_local_class(result, left, a_class).name),
                positive=False,
            )
        )
    rule = Rule.of(heads, body, name="disjoint-family")
    result.add_rule(rule, principle="P4", evaluable=len(heads) == 1)
    result.note(
        f"Principle 4 (generalized): {len(heads)}-way head over "
        f"{merged_parent} minus {len(a_classes)} classes"
        + ("" if len(heads) == 1 else " — disjunctive, not evaluable")
    )
    return rule
