"""Cardinality-constraint lattices and lcs resolution — Fig 13, Principle 6.

When two aggregation links with "similar meaning" are integrated, their
cardinality constraints may conflict; the paper resolves the conflict by
taking the **least common super-node** (lcs) of the two constraints in a
lattice that orders constraints from most restrictive (bottom) to least
restrictive (top)::

    Fig 13(a), simple:               Fig 13(b), extended (md = mandatory):

            [m:n]                            [m:n]
           /     \\                         /  |  \\
        [1:n]   [m:1]                  [1:n] [m:1] [md_n:n]
           \\     /                       |  \\ /  \\   |
            [1:1]                        .. (md refinements) ..

"lcs([1:n], [m:1]) = [m:n]" and "lcs([1:1], [m:1]) = [m:1]" are the
paper's own examples (spelled ``[1:m]``/``[n:1]`` there); "a node is
considered to be the least common super-node of itself".  The extended
lattice "reflects a relaxation strategy": mandatory variants sit directly
below their non-mandatory counterparts, so conflicts loosen bottom-up,
"which is least loosened".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..errors import LatticeError
from ..model.aggregations import Cardinality

C = Cardinality

#: Covering (child -> parents) relation of the simple lattice, Fig 13(a).
SIMPLE_COVERS: Dict[Cardinality, Tuple[Cardinality, ...]] = {
    C.ONE_TO_ONE: (C.ONE_TO_N, C.M_TO_ONE),
    C.ONE_TO_N: (C.M_TO_N,),
    C.M_TO_ONE: (C.M_TO_N,),
    C.M_TO_N: (),
}

#: Covering relation of the extended lattice, Fig 13(b): each mandatory
#: constraint is one relaxation step below its non-mandatory counterpart
#: and below the mandatory constraints that loosen its multiplicities.
EXTENDED_COVERS: Dict[Cardinality, Tuple[Cardinality, ...]] = {
    C.MD_ONE_TO_ONE: (C.MD_ONE_TO_N, C.MD_N_TO_ONE, C.ONE_TO_ONE),
    C.MD_ONE_TO_N: (C.MD_N_TO_N, C.ONE_TO_N),
    C.MD_N_TO_ONE: (C.MD_N_TO_N, C.M_TO_ONE),
    C.MD_N_TO_N: (C.M_TO_N,),
    C.ONE_TO_ONE: (C.ONE_TO_N, C.M_TO_ONE),
    C.ONE_TO_N: (C.M_TO_N,),
    C.M_TO_ONE: (C.M_TO_N,),
    C.M_TO_N: (),
}


class ConstraintLattice:
    """A lattice of cardinality constraints supporting lcs queries."""

    def __init__(self, covers: Dict[Cardinality, Tuple[Cardinality, ...]]) -> None:
        self._covers = covers
        self._ancestors: Dict[Cardinality, FrozenSet[Cardinality]] = {}
        for node in covers:
            self._ancestors[node] = self._compute_ancestors(node)

    def _compute_ancestors(self, node: Cardinality) -> FrozenSet[Cardinality]:
        seen: Set[Cardinality] = {node}  # reflexive: lcs of a node with itself
        frontier: List[Cardinality] = [node]
        while frontier:
            current = frontier.pop()
            for parent in self._covers[current]:
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return frozenset(seen)

    # ------------------------------------------------------------------
    def members(self) -> Tuple[Cardinality, ...]:
        return tuple(self._covers)

    def __contains__(self, constraint: Cardinality) -> bool:
        return constraint in self._covers

    def is_super(self, upper: Cardinality, lower: Cardinality) -> bool:
        """True when *upper* is *lower* or a (transitive) loosening of it."""
        self._require(lower)
        self._require(upper)
        return upper in self._ancestors[lower]

    def common_supers(
        self, left: Cardinality, right: Cardinality
    ) -> FrozenSet[Cardinality]:
        self._require(left)
        self._require(right)
        return self._ancestors[left] & self._ancestors[right]

    def lcs(self, left: Cardinality, right: Cardinality) -> Cardinality:
        """The least common super-node of *left* and *right*.

        The minimum of the common ancestors: the unique common ancestor
        that every other common ancestor loosens.
        """
        common = self.common_supers(left, right)
        minima = [
            candidate
            for candidate in common
            if all(self.is_super(other, candidate) for other in common)
        ]
        if len(minima) != 1:  # pragma: no cover - both figures are lattices
            raise LatticeError(
                f"no unique lcs for {left} and {right}: minima {minima}"
            )
        return minima[0]

    def lcs_all(self, constraints: Iterable[Cardinality]) -> Cardinality:
        """Fold :meth:`lcs` over several constraints."""
        items = list(constraints)
        if not items:
            raise LatticeError("lcs_all needs at least one constraint")
        result = items[0]
        self._require(result)
        for constraint in items[1:]:
            result = self.lcs(result, constraint)
        return result

    def relaxation_chain(self, constraint: Cardinality) -> List[Cardinality]:
        """A shortest bottom-up loosening path to the top ``[m:n]``.

        Documents the "loosening the local constraints along the lattice
        from bottom-up" strategy; used by the ablation benchmark.
        """
        self._require(constraint)
        chain = [constraint]
        current = constraint
        while self._covers[current]:
            current = min(
                self._covers[current], key=lambda node: len(self._ancestors[node])
            )
            chain.append(current)
        return chain

    def _require(self, constraint: Cardinality) -> None:
        if constraint not in self._covers:
            raise LatticeError(
                f"constraint {constraint} is not a member of this lattice"
            )


#: The simple lattice of Fig 13(a).
SIMPLE_LATTICE = ConstraintLattice(SIMPLE_COVERS)

#: The extended, mandatory-aware lattice of Fig 13(b).
EXTENDED_LATTICE = ConstraintLattice(EXTENDED_COVERS)


def lcs(left: Cardinality, right: Cardinality) -> Cardinality:
    """Module-level lcs using the extended lattice (handles all constraints)."""
    return EXTENDED_LATTICE.lcs(left, right)
