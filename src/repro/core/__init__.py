"""Public API of the reproduction: the paper's contribution as a library.

:class:`SchemaIntegrator` runs the §4-§6 integration pipeline on two
schemas; :class:`FederationSession` wraps the full §3 federation
(agents, mappings, multi-schema strategies, global queries).
"""

from .integrator import ALGORITHMS, SchemaIntegrator
from .session import FederationSession

__all__ = ["ALGORITHMS", "FederationSession", "SchemaIntegrator"]
