"""FederationSession: the five-line path from databases to global queries.

Sugar over the full §3 stack for applications that do not need to manage
agents explicitly::

    session = FederationSession()
    session.add_database(db1)          # an ObjectDatabase (schema S1)
    session.add_relational(rdb)        # or a RelationalDatabase
    session.declare(ASSERTION_TEXT)
    session.integrate()
    session.query("uncle(niece_nephew='John') -> Ussn#")

Each database gets its own implicit FSM-agent (one component system per
agent, the paper's Fig 1 shape); everything else delegates to
:class:`repro.federation.fsm.FSM`, which stays available as
``session.fsm`` for advanced use (Appendix B evaluation, strategies,
data mappings).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.async_executor import EventLoopThread
    from ..runtime.metrics import RuntimeStats
    from ..runtime.policy import RuntimePolicy
    from ..runtime.runtime import FederationRuntime
    from ..runtime.sharding import ShardPlan

from ..federation.agent import FSMAgent
from ..federation.evaluation import FederationEngine
from ..federation.fsm import FSM
from ..federation.mappings import DataMapping, DefaultMapping, SameObjectSpec
from ..federation.query import FederatedQuery
from ..federation.relational import RelationalDatabase
from ..integration.naming import NamePolicy
from ..integration.result import IntegratedSchema
from ..model.database import ObjectDatabase
from ..model.store import ComponentStore


class FederationSession:
    """A guided federation workflow: add → declare → integrate → query."""

    def __init__(self, policy: Optional[NamePolicy] = None) -> None:
        self.fsm = FSM(policy=policy)
        self._agent_counter = 0

    # ------------------------------------------------------------------
    def add_database(self, database: ObjectDatabase, agent_name: str = "") -> FSMAgent:
        """Register an object database under a fresh implicit agent."""
        agent = FSMAgent(agent_name or self._next_agent_name())
        agent.host_object_database(database)
        self.fsm.register_agent(agent)
        return agent

    def add_relational(
        self, database: RelationalDatabase, schema_name: str = "", agent_name: str = ""
    ) -> FSMAgent:
        """Register a relational database (transformed to OO on the way in)."""
        agent = FSMAgent(agent_name or self._next_agent_name(), system=database.system)
        agent.host_relational_database(database, schema_name)
        self.fsm.register_agent(agent)
        return agent

    def add_source(self, store: "ComponentStore", agent_name: str = "") -> FSMAgent:
        """Register any component store — e.g. a disk-backed
        :class:`~repro.sources.SourceDatabase` — under a fresh agent."""
        agent = FSMAgent(agent_name or self._next_agent_name())
        agent.host_source(store)
        self.fsm.register_agent(agent)
        return agent

    def _next_agent_name(self) -> str:
        self._agent_counter += 1
        return f"FSM-agent{self._agent_counter}"

    # ------------------------------------------------------------------
    def declare(self, assertions: Union[str, Sequence[Any]]) -> None:
        self.fsm.declare(assertions)

    def identify(
        self,
        left: str,
        right: str,
        mapping: Optional[DataMapping] = None,
    ) -> SameObjectSpec:
        """Declare object identity via key attributes.

        *left*/*right* are dotted ``schema.class.key`` strings, e.g.
        ``identify("S1.faculty.fssn#", "S2.student.ssn#")``.
        """
        left_schema, left_class, left_key = left.split(".", 2)
        right_schema, right_class, right_key = right.split(".", 2)
        spec = SameObjectSpec(
            left_schema, left_class, left_key,
            right_schema, right_class, right_key,
            mapping=mapping or DefaultMapping(),
        )
        return self.fsm.add_same_object(spec)

    # ------------------------------------------------------------------
    def integrate(
        self,
        strategy: str = "accumulation",
        algorithm: str = "optimized",
        order: Optional[Sequence[str]] = None,
    ) -> IntegratedSchema:
        """Integrate all registered schemas (two or more)."""
        names = list(order or self.fsm.schema_names())
        if len(names) == 2:
            return self.fsm.integrate(names[0], names[1], algorithm=algorithm)
        return self.fsm.integrate_all(names, strategy=strategy, algorithm=algorithm)

    @property
    def integrated(self) -> Optional[IntegratedSchema]:
        return self.fsm.integrated

    # ------------------------------------------------------------------
    def enable_runtime(
        self,
        policy: Optional["RuntimePolicy"] = None,
        runtime: Optional["FederationRuntime"] = None,
        mode: str = "threaded",
        shard_plan: "ShardPlan | int | None" = None,
        cache_path: Optional[str] = None,
        loop: Optional["EventLoopThread"] = None,
        plan: bool = True,
        deltas: bool = True,
    ) -> "FederationRuntime":
        """Route agent access through a federation runtime (concurrent
        fan-out, retries, extent caching, metrics); *mode* picks the
        thread-pool (``"threaded"``), event-loop (``"async"``) or
        process-pool (``"multiprocess"``, columnar extents over
        ``spawn``-ed workers) executor; *shard_plan* (a plan or a bare
        count) shards every
        extent scan; *cache_path* persists the extent cache to a sqlite
        file so a restarted session warms up scan-free; *loop* (async
        mode) multiplexes this session's scans on a shared event-loop
        thread owned by the caller — how the federation service runs
        many tenant sessions over one loop; *plan* (default on) runs the
        query planner before dispatch — assertion-graph pruning, scan
        coalescing into per-endpoint batches, and advisory hint
        pushdown; *deltas* (default on) patches stale cached extents
        from component delta feeds instead of rescanning them; see
        :meth:`repro.federation.fsm.FSM.use_runtime`."""
        return self.fsm.use_runtime(
            policy=policy, runtime=runtime, mode=mode, shard_plan=shard_plan,
            cache_path=cache_path, loop=loop, plan=plan, deltas=deltas,
        )

    @property
    def runtime(self) -> Optional["FederationRuntime"]:
        return self.fsm.runtime

    def runtime_stats(self) -> Optional["RuntimeStats"]:
        """Cumulative runtime counters (None when no runtime is enabled)."""
        return self.fsm.runtime_stats()

    @property
    def last_query_stats(self) -> Optional["RuntimeStats"]:
        """The counter/timer delta of the most recent :meth:`query`."""
        return self.fsm.last_query_stats

    def close(self) -> None:
        """Release the attached runtime's resources (loop thread,
        persistent cache store).  Idempotent; a no-op when no runtime
        was ever enabled."""
        if self.fsm.runtime is not None:
            self.fsm.runtime.close()

    # ------------------------------------------------------------------
    def engine(self) -> FederationEngine:
        return self.fsm.engine()

    def query(self, query: Union[str, FederatedQuery]) -> List[Dict[str, Any]]:
        return self.fsm.query(query)
