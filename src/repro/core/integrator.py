"""The public façade of the paper's contribution: :class:`SchemaIntegrator`.

One object that takes two local OO schemas plus correspondence
assertions (objects or DSL text) and produces the deduction-like
integrated schema — the complete §4-§6 pipeline::

    integrator = SchemaIntegrator(s1, s2, '''
        assertion S1.person == S2.human
          attr S1.person.ssn# == S2.human.ssn#
        end
    ''')
    integrated = integrator.run()
    print(integrated.describe())
    print(integrator.stats.describe())

``algorithm`` selects the optimized ``schema_integration`` (default),
the paper's ``naive`` baseline, or the [33]-style ``sull_kashyap``
variant — all instrumented identically, which is what the benchmarks
compare.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..assertions.assertion_set import AssertionSet
from ..assertions.class_assertions import ClassAssertion
from ..assertions.parser import parse as parse_assertions
from ..errors import IntegrationError
from ..integration.naive import naive_schema_integration, sull_kashyap_style
from ..integration.naming import NamePolicy
from ..integration.optimized import schema_integration
from ..integration.result import IntegratedSchema
from ..integration.stats import IntegrationStats
from ..model.schema import Schema

AssertionsInput = Union[str, AssertionSet, Iterable[ClassAssertion]]

ALGORITHMS = {
    "optimized": schema_integration,
    "naive": naive_schema_integration,
    "sull_kashyap": sull_kashyap_style,
}


class SchemaIntegrator:
    """Integrate two heterogeneous OO schemas into a global one."""

    def __init__(
        self,
        left: Schema,
        right: Schema,
        assertions: AssertionsInput = (),
        policy: Optional[NamePolicy] = None,
        algorithm: str = "optimized",
        validate: bool = True,
        name: str = "",
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise IntegrationError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        self.left = left
        self.right = right
        self.policy = policy
        self.algorithm = algorithm
        self.name = name
        self.assertions = self._normalize(assertions)
        if validate:
            left.validate()
            right.validate()
            self.assertions.validate(left, right)
        self._result: Optional[IntegratedSchema] = None
        self._stats: Optional[IntegrationStats] = None

    def _normalize(self, assertions: AssertionsInput) -> AssertionSet:
        if isinstance(assertions, AssertionSet):
            if (
                assertions.left_name != self.left.name
                or assertions.right_name != self.right.name
            ):
                raise IntegrationError(
                    f"assertion set is oriented "
                    f"({assertions.left_name}, {assertions.right_name}); "
                    f"expected ({self.left.name}, {self.right.name})"
                )
            return assertions
    # noqa: the remaining inputs build a fresh set
        assertion_set = AssertionSet(self.left.name, self.right.name)
        parsed: List[ClassAssertion]
        if isinstance(assertions, str):
            parsed = parse_assertions(assertions)
        else:
            parsed = list(assertions)
        assertion_set.extend(parsed)
        return assertion_set

    # ------------------------------------------------------------------
    def run(self) -> IntegratedSchema:
        """Execute the integration (cached; call :meth:`reset` to rerun)."""
        if self._result is None:
            run = ALGORITHMS[self.algorithm]
            self._result, self._stats = run(
                self.left, self.right, self.assertions, self.policy, name=self.name
            )
        return self._result

    def reset(self) -> None:
        self._result = None
        self._stats = None

    @property
    def result(self) -> IntegratedSchema:
        return self.run()

    @property
    def stats(self) -> IntegrationStats:
        self.run()
        assert self._stats is not None
        return self._stats

    def describe(self) -> str:
        """Integrated schema plus statistics, ready to print."""
        return self.run().describe() + "\n\n" + self.stats.describe()
