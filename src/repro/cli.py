"""Command-line interface: ``python -m repro``.

Subcommands:

``integrate LEFT.schema RIGHT.schema ASSERTIONS.dsl``
    Parse two schema files (the :mod:`repro.model.textio` format) and an
    assertion DSL file, run the integration and print the integrated
    schema; ``--algorithm`` picks optimized / naive / sull_kashyap,
    ``--stats`` appends the instrumentation counters, ``--log`` the
    build log (including §6.1 observation-3 warnings).

``tables``
    Print the paper's Tables 1-3 (the assertion taxonomies).

``check LEFT.schema RIGHT.schema ASSERTIONS.dsl``
    Validate schemas and assertions without integrating; exit status 1
    on the first error, with a readable message.

``query "class(attr='v') -> out"``
    Integrate a federation and run a global query through the federation
    runtime.  Sources are either ``--demo genealogy|cluster`` (built-in
    populated scenarios) or ``--schema`` files plus ``--assertions`` and
    an optional ``--data`` JSON file (``{"S1": {"class": [{...}]}}``).
    ``--latency MS`` simulates per-call network latency, ``--workers`` /
    ``--sequential`` size the fan-out pool, ``--mode
    threaded|async|multiprocess`` picks the execution engine (``--async``
    is shorthand for ``--mode async``; ``--max-inflight`` bounds the
    async in-flight window; multiprocess runs shard scans in spawned
    worker processes exchanging columnar extents), ``--shards N``
    scatters every extent scan across
    N shard endpoints per agent (``--shard-kind hash|range`` picks the
    OID partitioning), ``--cache-path FILE`` persists the extent cache
    to a sqlite file (a re-run with the same path answers warm without
    touching one agent), ``--plan`` / ``--no-plan`` toggles the query
    planner (assertion-graph pruning, per-endpoint scan coalescing,
    pushdown hints; on by default), ``--deltas`` / ``--no-deltas``
    toggles patching stale cached extents from component delta feeds
    (on by default), ``--repeat N`` re-runs the query
    (showing the extent cache), ``--appendix-b`` uses the top-down
    evaluator,
    ``--stats`` prints the per-query and cumulative
    :class:`~repro.runtime.RuntimeStats`, and ``--json`` switches the
    whole output (rows, warnings, stats) to one machine-readable JSON
    document sharing its vocabulary with the HTTP service.

``serve``
    Host the multi-tenant federation query service
    (:mod:`repro.service`) on stdlib asyncio HTTP.  ``--tenant`` adds
    one isolated federation per flag (``key=value`` pairs:
    ``name=t1,demo=cluster,mode=async,shards=4,...``); all async-mode
    tenants multiplex their agent scans on one shared event loop.
    ``--allow-remote-shutdown`` enables ``POST /admin/shutdown`` for
    deterministic teardown in scripts and CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .assertions.kinds import TABLE_1, TABLE_2, TABLE_3, render_table
from .assertions.parser import parse_file as parse_assertion_file
from .assertions.assertion_set import AssertionSet
from .core.integrator import ALGORITHMS, SchemaIntegrator
from .errors import ReproError
from .model.textio import parse_schema_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Integrate heterogeneous OO schemas "
            "(reproduction of Chen, ICDE 1999)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    integrate = commands.add_parser(
        "integrate", help="integrate two schema files using an assertion file"
    )
    integrate.add_argument("left", help="left schema file")
    integrate.add_argument("right", help="right schema file")
    integrate.add_argument("assertions", help="assertion DSL file")
    integrate.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="optimized",
        help="integration algorithm (default: optimized)",
    )
    integrate.add_argument(
        "--stats", action="store_true", help="print instrumentation counters"
    )
    integrate.add_argument(
        "--log", action="store_true", help="print the integration build log"
    )
    integrate.add_argument(
        "--report", action="store_true",
        help="print a markdown summary report instead of the schema",
    )

    commands.add_parser("tables", help="print the paper's Tables 1-3")

    check = commands.add_parser(
        "check", help="validate schemas and assertions without integrating"
    )
    check.add_argument("left")
    check.add_argument("right")
    check.add_argument("assertions")

    query = commands.add_parser(
        "query", help="run a federated query through the federation runtime"
    )
    query.add_argument("query", help="e.g. \"uncle(niece_nephew='John') -> Ussn#\"")
    query.add_argument(
        "--demo",
        choices=("genealogy", "cluster"),
        help="use a built-in populated federation instead of files",
    )
    query.add_argument(
        "--schema",
        action="append",
        default=[],
        metavar="FILE",
        help="component schema file (repeatable; needs --assertions)",
    )
    query.add_argument("--assertions", help="assertion DSL file for --schema mode")
    query.add_argument(
        "--data",
        help="JSON instance file: {schema: {class: [attribute maps]}}",
    )
    query.add_argument(
        "--source-dir",
        metavar="DIR",
        help="load a disk-backed federation from DIR: a federation.json "
        "manifest naming sqlite/CSV/JSON component sources plus an "
        "assertion file (exclusive with --demo/--schema)",
    )
    query.add_argument(
        "--appendix-b",
        action="store_true",
        help="evaluate top-down (Appendix B) instead of bottom-up",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print per-query and cumulative runtime stats",
    )
    query.add_argument(
        "--latency",
        type=float,
        default=0.0,
        metavar="MS",
        help="simulated per-agent-call latency in milliseconds",
    )
    query.add_argument(
        "--workers", type=int, default=8, help="fan-out thread pool size"
    )
    query.add_argument(
        "--mode",
        choices=("threaded", "async", "multiprocess"),
        default=None,
        help="execution engine: thread-pool fan-out (default), one asyncio "
        "event loop, or spawn-based worker processes exchanging columnar "
        "extents (--workers sizes the pool in every mode)",
    )
    query.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="alias for --mode async: multiplex agent scans on one asyncio "
        "event loop instead of a thread pool (same answers, same cache, "
        "same stats)",
    )
    query.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="concurrent in-flight scans the async executor admits "
        "(only with --async; default 64)",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="split every extent across N shard endpoints per agent "
        "(0 disables sharding)",
    )
    query.add_argument(
        "--shard-kind",
        choices=("hash", "range"),
        default="hash",
        help="how the shard plan partitions global OIDs (default: hash)",
    )
    query.add_argument(
        "--cache-path",
        metavar="FILE",
        help="persist the extent cache to a sqlite file; re-running with "
        "the same path restores it, so warm queries touch no agent",
    )
    query.add_argument(
        "--sequential",
        action="store_true",
        help="one worker, no retries (the pre-runtime behaviour)",
    )
    query.add_argument(
        "--plan",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the query planner: assertion-graph pruning, per-endpoint "
        "scan coalescing and advisory pushdown hints (--no-plan restores "
        "one round-trip per scan granule)",
    )
    query.add_argument(
        "--deltas",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="patch stale cached extents from component delta feeds "
        "instead of rescanning them (--no-deltas restores the "
        "rescan-on-any-write baseline)",
    )
    query.add_argument(
        "--no-cache", action="store_true", help="disable the extent cache"
    )
    query.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run the query N times (repeats hit the extent cache)",
    )
    query.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit rows, warnings and stats as one JSON document "
        "(same vocabulary as the HTTP service endpoints)",
    )

    serve = commands.add_parser(
        "serve", help="host the multi-tenant federation query service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8722,
        help="bind port (0 picks a free one; the chosen port is printed)",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="SPEC",
        help="add one tenant: comma-separated key=value pairs "
        "(name=, demo=genealogy|cluster, mode=threaded|async|multiprocess, "
        "schema= (repeatable via ';'), assertions=, data=, source-dir=, "
        "shards=, shard-kind=, latency=MS, max-inflight=, workers=, "
        "cache-path=, plan=true|false, deltas=true|false); default: one "
        "async 'genealogy' tenant",
    )
    serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="enable POST /admin/shutdown (off by default)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds to wait for in-flight queries on shutdown",
    )
    return parser


def _load(left_path: str, right_path: str, assertions_path: str):
    left = parse_schema_file(left_path)
    right = parse_schema_file(right_path)
    assertions = AssertionSet(left.name, right.name)
    assertions.extend(parse_assertion_file(assertions_path))
    return left, right, assertions


def _build_query_fsm(arguments):
    """An integrated FSM (one agent per component schema) for ``query``."""
    from .errors import QueryError
    from .federation.agent import FSMAgent
    from .federation.fsm import FSM
    from .model.database import ObjectDatabase

    if arguments.source_dir:
        if arguments.demo or arguments.schema or arguments.assertions or arguments.data:
            raise QueryError(
                "--source-dir and --demo/--schema/--assertions/--data are exclusive"
            )
        from .sources import load_source_federation

        text, databases = load_source_federation(arguments.source_dir)
    elif arguments.demo:
        if arguments.schema or arguments.assertions or arguments.data:
            raise QueryError("--demo and --schema/--assertions/--data are exclusive")
        if arguments.demo == "genealogy":
            from .workloads import genealogy

            _, _, text, databases = genealogy()
        else:
            from .workloads import federated_cluster

            _, text, databases = federated_cluster(schemas=4, per_class=8)
    else:
        if len(arguments.schema) < 2 or not arguments.assertions:
            raise QueryError(
                "query needs --demo, or at least two --schema files plus "
                "--assertions"
            )
        import json

        rows_by_schema = {}
        if arguments.data:
            with open(arguments.data, "r", encoding="utf-8") as handle:
                rows_by_schema = json.load(handle)
        databases = {}
        for path in arguments.schema:
            schema = parse_schema_file(path)
            database = ObjectDatabase(schema, agent=f"host-{schema.name}")
            for class_name, rows in rows_by_schema.get(schema.name, {}).items():
                database.insert_many(class_name, rows)
            databases[schema.name] = database
        with open(arguments.assertions, "r", encoding="utf-8") as handle:
            text = handle.read()

    fsm = FSM()
    for schema_name, database in databases.items():
        agent = FSMAgent(f"agent-{schema_name}")
        # host_source takes any component store — in-memory databases and
        # disk-backed source adapters host identically
        agent.host_source(database)
        fsm.register_agent(agent)
    fsm.declare(text)
    names = list(fsm.schema_names())
    if len(names) == 2:
        fsm.integrate(names[0], names[1])
    else:
        fsm.integrate_all(names)
    return fsm


def _attach_query_runtime(fsm, arguments):
    from .runtime import (
        AsyncInProcessTransport,
        AsyncSimulatedNetworkTransport,
        FaultProfile,
        FederationRuntime,
        InProcessTransport,
        RuntimePolicy,
        ShardPlan,
        SimulatedNetworkTransport,
    )

    if arguments.sequential:
        policy = RuntimePolicy.sequential(cache_enabled=not arguments.no_cache)
    else:
        policy = RuntimePolicy(
            max_workers=max(1, arguments.workers),
            max_inflight=max(1, arguments.max_inflight),
            cache_enabled=not arguments.no_cache,
        )
    profile = FaultProfile(latency=arguments.latency / 1000.0)
    mode = arguments.mode or ("async" if arguments.use_async else "threaded")
    if mode == "async":
        transport = AsyncInProcessTransport(fsm._agents, fsm._schema_host)
        if arguments.latency > 0:
            transport = AsyncSimulatedNetworkTransport(transport, profile)
    else:
        # threaded and multiprocess share the synchronous transport; the
        # runtime splices the process-pool hop in for multiprocess mode
        transport = InProcessTransport(fsm._agents, fsm._schema_host)
        if arguments.latency > 0:
            transport = SimulatedNetworkTransport(transport, profile)
    shard_plan = (
        ShardPlan(arguments.shards, arguments.shard_kind)
        if arguments.shards > 0
        else None
    )
    return fsm.use_runtime(
        runtime=FederationRuntime(
            transport=transport, policy=policy, mode=mode, shard_plan=shard_plan,
            cache_path=arguments.cache_path, plan=arguments.plan,
            deltas=arguments.deltas,
        )
    )


def _cmd_query(arguments, out) -> int:
    from .federation.query import FederatedQuery

    fsm = _build_query_fsm(arguments)
    runtime = _attach_query_runtime(fsm, arguments)
    # From here on the runtime owns threads, loops and possibly a sqlite
    # store — close() on every exit path (it is idempotent), so a failed
    # query does not leak an event-loop thread or an open cache file.
    try:
        query = FederatedQuery.parse(arguments.query)
        repeats = max(1, arguments.repeat)
        rows = []
        runs = []
        for run in range(repeats):
            if arguments.appendix_b:
                before = runtime.stats()
                with runtime.timer("query"):
                    rows = query.run(fsm.appendix_b(prefetch=query))
                fsm.last_query_stats = runtime.stats() - before
            else:
                rows = fsm.query(query)
            delta = fsm.last_query_stats
            timer = delta.timers.get("query")
            runs.append(
                {
                    "run": run + 1,
                    "elapsed_ms": round(timer.total * 1000.0, 3),
                    "agent_scans": delta.counter("agent_scans"),
                    "cache_hits": delta.counter("cache_hits"),
                }
            )
            if arguments.stats and not arguments.as_json and repeats > 1:
                print(
                    f"run {run + 1}: {timer.total * 1000:.2f}ms  "
                    f"agent_scans={delta.counter('agent_scans')}  "
                    f"cache_hits={delta.counter('cache_hits')}",
                    file=out,
                )
        warnings = runtime.drain_warnings()
        if arguments.as_json:
            import json

            from .service.serialization import rows_to_json, stats_to_dict

            document = {
                "query": str(query),
                "evaluator": "appendix_b" if arguments.appendix_b else "bottom_up",
                "rows": rows_to_json(rows),
                "count": len(rows),
                "warnings": list(warnings),
            }
            if arguments.stats:
                document["runs"] = runs
                document["stats"] = {
                    "last_query": stats_to_dict(fsm.last_query_stats),
                    "cumulative": stats_to_dict(runtime.stats()),
                }
            print(json.dumps(document, indent=2), file=out)
            return 0
        if not rows:
            print("no answers", file=out)
        for row in rows:
            items = ", ".join(f"{k}={v!r}" for k, v in row.items())
            print(f"  {items}", file=out)
        for warning in warnings:
            print(f"warning: {warning}", file=out)
        if arguments.stats:
            print(file=out)
            print("last query:", file=out)
            print(fsm.last_query_stats.describe(), file=out)
            print(file=out)
            print("cumulative:", file=out)
            print(runtime.stats().describe(), file=out)
        return 0
    finally:
        runtime.close()  # flush/release the persistent cache store, if any


def _parse_tenant_spec(spec: str):
    """``name=t1,demo=cluster,mode=async,...`` → :class:`TenantConfig`."""
    from .errors import ServiceError
    from .service import TenantConfig

    values = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, eq, value = part.partition("=")
        if not eq:
            raise ServiceError(f"tenant spec part {part!r} is not key=value")
        values[key.strip().lower().replace("-", "_")] = value.strip()
    known = {
        "name", "demo", "mode", "schema", "assertions", "data", "shards",
        "shard_kind", "latency", "max_inflight", "scan_inflight", "workers",
        "cache_path", "plan", "deltas", "source_dir",
    }
    unknown = sorted(set(values) - known)
    if unknown:
        raise ServiceError(f"unknown tenant spec keys: {', '.join(unknown)}")
    if "name" not in values:
        raise ServiceError(f"tenant spec {spec!r} needs name=...")
    schemas = tuple(
        path for path in values.get("schema", "").split(";") if path
    )
    source_dir = values.get("source_dir")
    return TenantConfig(
        name=values["name"],
        demo=values.get("demo", "genealogy" if not (schemas or source_dir) else None),
        schemas=schemas,
        source_dir=source_dir,
        assertions=values.get("assertions"),
        data=values.get("data"),
        mode=values.get("mode", "async"),
        shards=int(values.get("shards", "0")),
        shard_kind=values.get("shard_kind", "hash"),
        latency_ms=float(values.get("latency", "0")),
        max_inflight=int(values.get("max_inflight", "8")),
        scan_inflight=int(values.get("scan_inflight", "64")),
        max_workers=int(values.get("workers", "8")),
        cache_path=values.get("cache_path"),
        plan=values.get("plan", "true").strip().lower()
        not in ("0", "false", "no", "off"),
        deltas=values.get("deltas", "true").strip().lower()
        not in ("0", "false", "no", "off"),
    )


def _cmd_serve(arguments, out) -> int:
    import threading

    from .service import FederationRepository, ServiceServer, create_app

    repository = FederationRepository(drain_timeout=arguments.drain_timeout)
    try:
        specs = arguments.tenant or ["name=genealogy,demo=genealogy,mode=async"]
        for spec in specs:
            config = _parse_tenant_spec(spec)
            tenant = repository.add_tenant(config)
            print(
                f"tenant {tenant.name!r} ready "
                f"({config.mode}, schemas={len(tenant.session.fsm.schema_names())})",
                file=out,
            )
        app = create_app(
            repository, allow_shutdown=arguments.allow_remote_shutdown
        )
        server = ServiceServer(app, host=arguments.host, port=arguments.port)

        def announce() -> None:
            # the bound port is only known once the loop is up; announce
            # from the side so `--port 0` scripts can parse the address
            if server.ready.wait(timeout=30.0):
                print(
                    f"listening on http://{server.host}:{server.bound_port}",
                    file=out,
                    flush=True,
                )

        threading.Thread(target=announce, name="serve-announce", daemon=True).start()
        try:
            server.run()
        except KeyboardInterrupt:
            print("interrupt: draining in-flight queries", file=out)
        return 0
    finally:
        repository.close()


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the exit status."""
    out = out or sys.stdout
    arguments = _build_parser().parse_args(argv)
    try:
        if arguments.command == "tables":
            print(render_table(TABLE_1, "Table 1. Assertions for classes."), file=out)
            print(file=out)
            print(render_table(TABLE_2, "Table 2. Assertions for attributes."), file=out)
            print(file=out)
            print(
                render_table(TABLE_3, "Table 3. Assertions for aggregation functions."),
                file=out,
            )
            return 0
        if arguments.command == "query":
            return _cmd_query(arguments, out)
        if arguments.command == "serve":
            return _cmd_serve(arguments, out)
        if arguments.command == "check":
            from .assertions.analysis import report as analysis_report

            left, right, assertions = _load(
                arguments.left, arguments.right, arguments.assertions
            )
            assertions.validate(left, right)
            print(
                f"OK: {len(left)} + {len(right)} classes, "
                f"{len(assertions)} assertions validate",
                file=out,
            )
            print(analysis_report(assertions, left, right), file=out)
            return 0
        if arguments.command == "integrate":
            left, right, assertions = _load(
                arguments.left, arguments.right, arguments.assertions
            )
            integrator = SchemaIntegrator(
                left, right, assertions, algorithm=arguments.algorithm
            )
            result = integrator.run()
            if arguments.report:
                from .integration.report import build_report, render_markdown

                print(
                    render_markdown(build_report(result, integrator.stats)),
                    file=out,
                )
            else:
                print(result.describe(), file=out)
            if arguments.stats:
                print(file=out)
                print(integrator.stats.describe(), file=out)
            if arguments.log:
                print(file=out)
                print("build log:", file=out)
                for note in result.log:
                    print(f"  {note}", file=out)
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the command set
