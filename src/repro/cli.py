"""Command-line interface: ``python -m repro``.

Subcommands:

``integrate LEFT.schema RIGHT.schema ASSERTIONS.dsl``
    Parse two schema files (the :mod:`repro.model.textio` format) and an
    assertion DSL file, run the integration and print the integrated
    schema; ``--algorithm`` picks optimized / naive / sull_kashyap,
    ``--stats`` appends the instrumentation counters, ``--log`` the
    build log (including §6.1 observation-3 warnings).

``tables``
    Print the paper's Tables 1-3 (the assertion taxonomies).

``check LEFT.schema RIGHT.schema ASSERTIONS.dsl``
    Validate schemas and assertions without integrating; exit status 1
    on the first error, with a readable message.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .assertions.kinds import TABLE_1, TABLE_2, TABLE_3, render_table
from .assertions.parser import parse_file as parse_assertion_file
from .assertions.assertion_set import AssertionSet
from .core.integrator import ALGORITHMS, SchemaIntegrator
from .errors import ReproError
from .model.textio import parse_schema_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Integrate heterogeneous OO schemas "
            "(reproduction of Chen, ICDE 1999)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    integrate = commands.add_parser(
        "integrate", help="integrate two schema files using an assertion file"
    )
    integrate.add_argument("left", help="left schema file")
    integrate.add_argument("right", help="right schema file")
    integrate.add_argument("assertions", help="assertion DSL file")
    integrate.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="optimized",
        help="integration algorithm (default: optimized)",
    )
    integrate.add_argument(
        "--stats", action="store_true", help="print instrumentation counters"
    )
    integrate.add_argument(
        "--log", action="store_true", help="print the integration build log"
    )
    integrate.add_argument(
        "--report", action="store_true",
        help="print a markdown summary report instead of the schema",
    )

    commands.add_parser("tables", help="print the paper's Tables 1-3")

    check = commands.add_parser(
        "check", help="validate schemas and assertions without integrating"
    )
    check.add_argument("left")
    check.add_argument("right")
    check.add_argument("assertions")
    return parser


def _load(left_path: str, right_path: str, assertions_path: str):
    left = parse_schema_file(left_path)
    right = parse_schema_file(right_path)
    assertions = AssertionSet(left.name, right.name)
    assertions.extend(parse_assertion_file(assertions_path))
    return left, right, assertions


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the exit status."""
    out = out or sys.stdout
    arguments = _build_parser().parse_args(argv)
    try:
        if arguments.command == "tables":
            print(render_table(TABLE_1, "Table 1. Assertions for classes."), file=out)
            print(file=out)
            print(render_table(TABLE_2, "Table 2. Assertions for attributes."), file=out)
            print(file=out)
            print(
                render_table(TABLE_3, "Table 3. Assertions for aggregation functions."),
                file=out,
            )
            return 0
        if arguments.command == "check":
            from .assertions.analysis import report as analysis_report

            left, right, assertions = _load(
                arguments.left, arguments.right, arguments.assertions
            )
            assertions.validate(left, right)
            print(
                f"OK: {len(left)} + {len(right)} classes, "
                f"{len(assertions)} assertions validate",
                file=out,
            )
            print(analysis_report(assertions, left, right), file=out)
            return 0
        if arguments.command == "integrate":
            left, right, assertions = _load(
                arguments.left, arguments.right, arguments.assertions
            )
            integrator = SchemaIntegrator(
                left, right, assertions, algorithm=arguments.algorithm
            )
            result = integrator.run()
            if arguments.report:
                from .integration.report import build_report, render_markdown

                print(
                    render_markdown(build_report(result, integrator.stats)),
                    file=out,
                )
            else:
                print(result.describe(), file=out)
            if arguments.stats:
                print(file=out)
                print(integrator.stats.describe(), file=out)
            if arguments.log:
                print(file=out)
                print("build log:", file=out)
                for note in result.log:
                    print(f"  {note}", file=out)
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - argparse enforces the command set
