"""Assertion sets: the declarative input of the integration process (§4-§6).

An :class:`AssertionSet` collects every correspondence assertion between
two fixed schemas, normalizes orientation (assertions may be declared in
either direction), indexes them by class pair — the lookup the §6
algorithms perform at every node pair — and detects conflicting
declarations early.

:class:`OrientedLookup` is what a lookup returns: the assertion *as seen
from* the requested orientation, so ``lookup("person", "human")`` and the
algorithm's inner loop never have to reason about declaration order.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import AssertionConflictError, AssertionSpecError
from ..model.schema import Schema
from .class_assertions import ClassAssertion
from .kinds import ClassKind, flipped as flip_kind


@dataclasses.dataclass(frozen=True)
class OrientedLookup:
    """A lookup result oriented left-schema → right-schema.

    ``kind`` is the relationship of ``(left_class, right_class)`` *in the
    requested orientation*; ``assertion`` is the underlying declaration
    (possibly declared the other way around); ``reversed_declaration``
    records whether it was flipped to answer the lookup.
    """

    kind: ClassKind
    assertion: ClassAssertion
    reversed_declaration: bool = False

    def oriented_assertion(self) -> ClassAssertion:
        """The assertion re-oriented to match the lookup direction."""
        if not self.reversed_declaration:
            return self.assertion
        return self.assertion.flipped()


class AssertionSet:
    """All assertions between schema *left_name* and schema *right_name*.

    The set is *directed*: lookups are answered in the left → right
    orientation (the orientation `schema_integration` traverses), with
    declarations accepted in either direction.
    """

    def __init__(self, left_name: str, right_name: str) -> None:
        if left_name == right_name:
            raise AssertionSpecError(
                "an assertion set relates two distinct schemas"
            )
        self.left_name = left_name
        self.right_name = right_name
        self._assertions: List[ClassAssertion] = []
        #: (left_class, right_class) -> set-relationship assertion
        self._pair_index: Dict[Tuple[str, str], ClassAssertion] = {}
        #: (left_class, right_class) -> derivation assertions touching the pair
        self._derivations: Dict[Tuple[str, str], List[ClassAssertion]] = defaultdict(list)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add(self, assertion: ClassAssertion) -> ClassAssertion:
        """Add *assertion*, normalizing orientation and checking conflicts."""
        if (
            assertion.left_schema == self.left_name
            and assertion.right_schema == self.right_name
        ):
            oriented = assertion
        elif (
            assertion.left_schema == self.right_name
            and assertion.right_schema == self.left_name
        ):
            oriented = assertion  # stored as declared; lookups flip on demand
        else:
            raise AssertionSpecError(
                f"assertion {assertion.head()} relates "
                f"({assertion.left_schema}, {assertion.right_schema}); this "
                f"set holds ({self.left_name}, {self.right_name}) assertions"
            )

        if assertion.kind is ClassKind.DERIVATION:
            for pair in self._derivation_pairs(oriented):
                self._derivations[pair].append(oriented)
        else:
            pair = self._oriented_pair(oriented)
            existing = self._pair_index.get(pair)
            if existing is not None:
                existing_kind = self._oriented_kind(existing)
                new_kind = self._oriented_kind(oriented)
                if existing_kind is not new_kind:
                    raise AssertionConflictError(
                        f"classes {pair[0]!r}/{pair[1]!r} already related by "
                        f"{existing_kind}, cannot also declare {new_kind}"
                    )
                raise AssertionConflictError(
                    f"duplicate assertion for classes {pair[0]!r}/{pair[1]!r}"
                )
            self._pair_index[pair] = oriented
        self._assertions.append(oriented)
        return oriented

    def extend(self, assertions: Iterable[ClassAssertion]) -> None:
        for assertion in assertions:
            self.add(assertion)

    def add_if_new(self, assertion: ClassAssertion) -> bool:
        """Add unless an agreeing assertion for the pair already exists.

        Returns False for a same-kind duplicate (common when lifting
        assertions through a merge that unified several local classes);
        conflicting kinds still raise :class:`AssertionConflictError`.
        """
        if assertion.kind is not ClassKind.DERIVATION:
            pair = self._oriented_pair(assertion)
            existing = self._pair_index.get(pair)
            if existing is not None:
                if self._oriented_kind(existing) is self._oriented_kind(assertion):
                    return False
        self.add(assertion)
        return True

    def _oriented_pair(self, assertion: ClassAssertion) -> Tuple[str, str]:
        if assertion.left_schema == self.left_name:
            return (assertion.source.class_name, assertion.target.class_name)
        return (assertion.target.class_name, assertion.source.class_name)

    def _oriented_kind(self, assertion: ClassAssertion) -> ClassKind:
        if assertion.left_schema == self.left_name:
            return assertion.kind
        return flip_kind(assertion.kind)  # type: ignore[return-value]

    def _derivation_pairs(
        self, assertion: ClassAssertion
    ) -> Iterator[Tuple[str, str]]:
        """Every (left_class, right_class) pair a derivation touches."""
        if assertion.left_schema == self.left_name:
            for source in assertion.source_classes:
                yield (source, assertion.target_class)
        else:
            for source in assertion.source_classes:
                yield (assertion.target_class, source)

    # ------------------------------------------------------------------
    # lookup (the hot operation of the §6 algorithms)
    # ------------------------------------------------------------------
    def lookup(self, left_class: str, right_class: str) -> Optional[OrientedLookup]:
        """The relationship of ``(left_class, right_class)``, oriented.

        Set-relationship assertions win over derivations when both exist
        (the algorithm's switch tests equivalence/inclusion first);
        returns None when no assertion mentions the pair.
        """
        assertion = self._pair_index.get((left_class, right_class))
        if assertion is not None:
            return OrientedLookup(
                self._oriented_kind(assertion),
                assertion,
                reversed_declaration=assertion.left_schema != self.left_name,
            )
        derivations = self._derivations.get((left_class, right_class))
        if derivations:
            first = derivations[0]
            return OrientedLookup(
                ClassKind.DERIVATION,
                first,
                reversed_declaration=first.left_schema != self.left_name,
            )
        return None

    def kind_of(self, left_class: str, right_class: str) -> Optional[ClassKind]:
        """Just the oriented kind, or None."""
        result = self.lookup(left_class, right_class)
        return result.kind if result else None

    def derivations_for(
        self, left_class: str, right_class: str
    ) -> Tuple[ClassAssertion, ...]:
        """All derivation assertions touching the oriented pair."""
        return tuple(self._derivations.get((left_class, right_class), ()))

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ClassAssertion]:
        return iter(self._assertions)

    def __len__(self) -> int:
        return len(self._assertions)

    def by_kind(self, kind: ClassKind) -> Tuple[ClassAssertion, ...]:
        """Assertions of one kind *as declared* (not re-oriented)."""
        return tuple(a for a in self._assertions if a.kind is kind)

    def all_derivations(self) -> Tuple[ClassAssertion, ...]:
        return self.by_kind(ClassKind.DERIVATION)

    def mentioned_classes(self, schema_name: str) -> Tuple[str, ...]:
        """Every class of *schema_name* any assertion mentions."""
        classes: List[str] = []
        for assertion in self._assertions:
            for class_name in assertion.classes_of(schema_name):
                if class_name not in classes:
                    classes.append(class_name)
        return tuple(classes)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, left: Schema, right: Schema) -> None:
        """Resolve every assertion against the two schemas.

        *left* / *right* must be the schemas named at construction.
        """
        if left.name != self.left_name or right.name != self.right_name:
            raise AssertionSpecError(
                f"assertion set is for ({self.left_name}, {self.right_name}), "
                f"validated against ({left.name}, {right.name})"
            )
        by_name = {left.name: left, right.name: right}
        for assertion in self._assertions:
            assertion.validate(
                by_name[assertion.left_schema], by_name[assertion.right_schema]
            )

    def describe(self) -> str:
        """All assertions in Fig 4 layout."""
        return "\n\n".join(a.describe() for a in self._assertions)
