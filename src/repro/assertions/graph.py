"""Assertion graphs and hyperedges — the device of Principle 5 (Fig 11).

For a (decomposed) derivation assertion ``S1(A1, ..., An) → S2.B`` the
paper constructs a graph *G* with

* a node per *path* referring to an element of some class,
* an edge between ``path_a`` and ``path_b`` iff ``path_a rel path_b``
  with ``rel ∈ {=, ∈, ⊆}`` is specified (value correspondences and
  attribute correspondences alike), and
* a *hyperedge* per predicate appearing in the assertion (the ``with``
  conditions), containing the paths the predicate mentions.

Each connected subgraph is then marked with a fresh variable — isolated
nodes count as (singleton) connected subgraphs, cf. the remark about
``S1.car1.car-name`` being marked ``y3`` — and hyperedges later yield
their own reverse substitutions.  This module builds the graph; variable
marking and reverse-substitution generation live in
:mod:`repro.integration.principle_derivation`, which owns the fresh
variable supply of an integration run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, List, Set, Tuple

from ..logic.atoms import ComparisonOp
from .attribute_assertions import WithCondition
from .class_assertions import ClassAssertion
from .kinds import AttributeKind
from .paths import Path

#: Attribute-correspondence kinds that make the two sides share values
#: and therefore contribute graph edges (⊇ is ⊆ read the other way;
#: ∩ shares values for the overlapping part — cf. Fig 9/10 where
#: ``price ∩ car-name1`` threads the shared price variable).
EDGE_KINDS = frozenset(
    {
        AttributeKind.EQUIVALENCE,
        AttributeKind.SUBSET,
        AttributeKind.SUPERSET,
        AttributeKind.INTERSECTION,
    }
)


@dataclasses.dataclass(frozen=True)
class Hyperedge:
    """A predicate hyperedge ``he(p)`` over assertion-graph nodes.

    For a ``with`` condition ``att τ Cont`` the hyperedge contains the
    single node *att* and remembers the comparison, e.g.
    ``S1.car1.car-name = 'car-name1'`` (Fig 11(b), marked *p*).
    """

    nodes: Tuple[Path, ...]
    op: ComparisonOp
    constant: Any

    def describe(self) -> str:
        inside = ", ".join(str(node) for node in self.nodes)
        return f"he({inside} {self.op} {self.constant!r})"


class AssertionGraph:
    """The assertion graph *G* of one derivation assertion."""

    def __init__(self, assertion: ClassAssertion) -> None:
        self.assertion = assertion
        self._adjacent: Dict[Path, Set[Path]] = {}
        self._hyperedges: List[Hyperedge] = []
        self._build()

    # ------------------------------------------------------------------
    def _add_node(self, path: Path) -> None:
        self._adjacent.setdefault(path, set())

    def _add_edge(self, left: Path, right: Path) -> None:
        self._add_node(left)
        self._add_node(right)
        self._adjacent[left].add(right)
        self._adjacent[right].add(left)

    def _build(self) -> None:
        assertion = self.assertion
        for corr in assertion.value_corrs_left + assertion.value_corrs_right:
            if corr.joins:
                self._add_edge(corr.left, corr.right)
            else:
                self._add_node(corr.left)
                self._add_node(corr.right)
        for corr in assertion.attribute_corrs:
            if corr.kind in EDGE_KINDS:
                self._add_edge(corr.left, corr.right)
            else:
                self._add_node(corr.left)
                self._add_node(corr.right)
            if corr.condition is not None:
                self._add_hyperedge(corr.condition)
        for corr in assertion.aggregation_corrs:
            if corr.kind.value in {k.value for k in EDGE_KINDS}:
                self._add_edge(corr.left, corr.right)
            else:
                self._add_node(corr.left)
                self._add_node(corr.right)

    def _add_hyperedge(self, condition: WithCondition) -> None:
        self._add_node(condition.attribute)
        self._hyperedges.append(
            Hyperedge((condition.attribute,), condition.op, condition.constant)
        )

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Path, ...]:
        return tuple(sorted(self._adjacent, key=lambda p: p.canonical()))

    @property
    def hyperedges(self) -> Tuple[Hyperedge, ...]:
        return tuple(self._hyperedges)

    def edges(self) -> Tuple[Tuple[Path, Path], ...]:
        """Undirected edges, each reported once, deterministically ordered."""
        seen: Set[FrozenSet[Path]] = set()
        result: List[Tuple[Path, Path]] = []
        for node in self.nodes:
            for neighbour in sorted(self._adjacent[node], key=lambda p: p.canonical()):
                key = frozenset((node, neighbour))
                if key not in seen:
                    seen.add(key)
                    result.append((node, neighbour))
        return tuple(result)

    def neighbours(self, path: Path) -> FrozenSet[Path]:
        return frozenset(self._adjacent.get(path, ()))

    def components(self) -> List[Tuple[Path, ...]]:
        """Connected subgraphs (isolated nodes included), in stable order.

        Each returned tuple is one connected subgraph, ordered by path;
        components are ordered by their smallest member.  Stable ordering
        makes generated rules deterministic, hence testable.
        """
        unvisited = set(self._adjacent)
        components: List[Tuple[Path, ...]] = []
        for start in self.nodes:
            if start not in unvisited:
                continue
            component: Set[Path] = set()
            frontier = [start]
            while frontier:
                current = frontier.pop()
                if current in component:
                    continue
                component.add(current)
                unvisited.discard(current)
                frontier.extend(self._adjacent[current] - component)
            components.append(tuple(sorted(component, key=lambda p: p.canonical())))
        components.sort(key=lambda member: member[0].canonical())
        return components

    def describe(self) -> str:
        """Readable dump: components and hyperedges, Fig 11 style."""
        lines = ["assertion graph:"]
        for index, component in enumerate(self.components(), start=1):
            inside = ", ".join(str(path) for path in component)
            lines.append(f"  component x{index}: {{{inside}}}")
        for hyperedge in self._hyperedges:
            lines.append(f"  {hyperedge.describe()}")
        return "\n".join(lines)
