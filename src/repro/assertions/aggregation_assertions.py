"""Aggregation-function correspondences (§4.1, Table 3).

Besides the four set relationships on the functions' ranges, Table 3 adds
*reverse* (ℵ): ``f ℵ g`` states that ``g`` is the inverse function of
``f`` — e.g. ``man.spouse ℵ woman.spouse`` in Fig 4(d).  Principle 4's
alternative form turns reverse declarations into a pair of symmetric
derivation rules.
"""

from __future__ import annotations

import dataclasses

from ..errors import AssertionSpecError
from .kinds import AggregationKind, flipped as flip_kind
from .paths import Path


@dataclasses.dataclass(frozen=True)
class AggregationCorrespondence:
    """``left θ right`` for aggregation functions, θ from Table 3.

    Both paths must terminate at an aggregation-function name of their
    class; the terminal element *is* the function.
    """

    left: Path
    right: Path
    kind: AggregationKind

    def __post_init__(self) -> None:
        if self.left.is_class_path or self.right.is_class_path:
            raise AssertionSpecError(
                f"aggregation correspondence needs function paths, got "
                f"{self.left} / {self.right}"
            )

    @property
    def left_function(self) -> str:
        terminal = self.left.terminal
        assert terminal is not None
        return terminal

    @property
    def right_function(self) -> str:
        terminal = self.right.terminal
        assert terminal is not None
        return terminal

    def flipped(self) -> "AggregationCorrespondence":
        """The correspondence as seen from the other schema's side.

        Reverse (ℵ) is symmetric — "g is a reverse function of f" makes
        f a reverse function of g — so it flips to itself.
        """
        return AggregationCorrespondence(
            self.right, self.left, flip_kind(self.kind)  # type: ignore[arg-type]
        )

    def __str__(self) -> str:
        return f"{self.left} {self.kind} {self.right}"
