"""Correspondence-assertion language (§4 of the paper).

Paths (Definition 4.1), the Table 1-3 taxonomies, class / attribute /
aggregation / value correspondences, assertion sets with oriented lookup
(the §6 algorithms' hot query), derivation-assertion decomposition and
the assertion graph of Principle 5, plus a textual DSL parser.
"""

from .aggregation_assertions import AggregationCorrespondence
from .analysis import Finding, analyze, report as analysis_report
from .assertion_set import AssertionSet, OrientedLookup
from .attribute_assertions import AttributeCorrespondence, WithCondition
from .class_assertions import (
    ClassAssertion,
    derivation,
    equivalence,
    exclusion,
    inclusion,
    intersection,
)
from .decompose import decompose, decompose_all, is_decomposed
from .graph import AssertionGraph, EDGE_KINDS, Hyperedge
from .kinds import (
    AggregationKind,
    AttributeKind,
    ClassKind,
    TABLE_1,
    TABLE_2,
    TABLE_3,
    ValueOp,
    flipped,
    render_table,
)
from .parser import parse, parse_file
from .paths import Path
from .value_assertions import ValueCorrespondence

__all__ = [
    "AggregationCorrespondence",
    "Finding",
    "analysis_report",
    "analyze",
    "AggregationKind",
    "AssertionGraph",
    "AssertionSet",
    "AttributeCorrespondence",
    "AttributeKind",
    "ClassAssertion",
    "ClassKind",
    "EDGE_KINDS",
    "Hyperedge",
    "OrientedLookup",
    "Path",
    "TABLE_1",
    "TABLE_2",
    "TABLE_3",
    "ValueCorrespondence",
    "ValueOp",
    "WithCondition",
    "decompose",
    "decompose_all",
    "derivation",
    "equivalence",
    "exclusion",
    "flipped",
    "inclusion",
    "intersection",
    "is_decomposed",
    "parse",
    "parse_file",
    "render_table",
]
