"""Intra-schema value correspondences (§4.1).

A value correspondence relates two attributes *of the same schema*, e.g.
the crucial constraint of Example 3::

    value correspondence of attributes in S1:
        parent.Pssn# ∈ brother.brothers

These become the *edges* of the assertion graph that thread join
variables through generated derivation rules (Principle 5): the ``∈``
above is what makes ``parent(x, y), brother(z, y) → uncle(x, z)`` share
``y``.
"""

from __future__ import annotations

import dataclasses

from ..errors import AssertionSpecError
from .kinds import ValueOp
from .paths import Path


@dataclasses.dataclass(frozen=True)
class ValueCorrespondence:
    """``left op right`` between attributes of one schema."""

    left: Path
    right: Path
    op: ValueOp

    def __post_init__(self) -> None:
        if self.left.schema != self.right.schema:
            raise AssertionSpecError(
                f"value correspondences relate attributes of the same "
                f"schema; got {self.left.schema!r} and {self.right.schema!r}"
            )
        if self.left.is_class_path or self.right.is_class_path:
            raise AssertionSpecError(
                f"value correspondences need attribute paths, got "
                f"{self.left} / {self.right}"
            )

    @property
    def schema(self) -> str:
        return self.left.schema

    @property
    def joins(self) -> bool:
        """True when the op expresses value sharing (graph-edge ops).

        ``=`` and ``∈`` assert that a shared value exists and therefore
        contribute an edge (shared variable) to the assertion graph;
        the set-level ops ``⊇ ∩ ∅ ≠`` constrain extents without naming a
        shared value.
        """
        return self.op in (ValueOp.EQ, ValueOp.IN)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"
