"""Decomposition of derivation assertions (Principle 5's pre-step).

Before an assertion graph is built, the paper requires that a derivation
assertion be partitioned "into several smaller ones such that neither the
attribute name nor the aggregation function appears more than once in an
attribute correspondence or in an aggregation function correspondence".
Figs 9 and 10 show the intended result: the ``car`` assertion with one
correspondence per ``car-name_i`` splits into *n* assertions, each
carrying the shared ``time ≡ time`` correspondence plus exactly one of
the colliding ones.

The paper performs this split manually; :func:`decompose` automates the
common shape (one attribute overloaded across several correspondences,
the rest shared) and raises :class:`~repro.errors.DecompositionError`
when collisions overlap in a way with no canonical split — that is the
"very difficult situation" where the paper, too, falls back to the DBA.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import DecompositionError
from .aggregation_assertions import AggregationCorrespondence
from .attribute_assertions import AttributeCorrespondence
from .class_assertions import ClassAssertion
from .kinds import ClassKind
from .paths import Path

MemberCorr = Union[AttributeCorrespondence, AggregationCorrespondence]


def _name_keys(corr: MemberCorr) -> Tuple[Tuple[str, str], ...]:
    """The (class-qualified) member names a correspondence uses.

    Qualification by ``schema.class`` keeps same-named attributes of
    different classes from colliding spuriously.
    """
    def key(path: Path) -> Tuple[str, str]:
        return (f"{path.schema}.{path.class_name}", path.descriptor)

    return (key(corr.left), key(corr.right))


def is_decomposed(assertion: ClassAssertion) -> bool:
    """True when no member name appears twice in a correspondence group."""
    for group in (assertion.attribute_corrs, assertion.aggregation_corrs):
        used = set()
        for corr in group:
            for name_key in _name_keys(corr):
                if name_key in used:
                    return False
                used.add(name_key)
    return True


def decompose(assertion: ClassAssertion) -> List[ClassAssertion]:
    """Split *assertion* so every member name occurs at most once per group.

    Non-derivation assertions and already-decomposed derivations are
    returned unchanged (singleton list).  Otherwise correspondences that
    collide on a name are distributed one-per-output-assertion and
    non-colliding correspondences (and all value correspondences) are
    replicated to every output, matching Figs 9-10.
    """
    if assertion.kind is not ClassKind.DERIVATION or is_decomposed(assertion):
        return [assertion]

    attribute_bins = _split_group(assertion.attribute_corrs, str(assertion.head()))
    aggregation_bins = _split_group(assertion.aggregation_corrs, str(assertion.head()))
    bin_count = max(len(attribute_bins), len(aggregation_bins))
    # Pad the shorter side by replicating its single bin.
    attribute_bins = _pad(attribute_bins, bin_count)
    aggregation_bins = _pad(aggregation_bins, bin_count)

    results: List[ClassAssertion] = []
    for attribute_corrs, aggregation_corrs in zip(attribute_bins, aggregation_bins):
        results.append(
            ClassAssertion(
                kind=assertion.kind,
                sources=assertion.sources,
                target=assertion.target,
                value_corrs_left=assertion.value_corrs_left,
                value_corrs_right=assertion.value_corrs_right,
                attribute_corrs=tuple(attribute_corrs),
                aggregation_corrs=tuple(aggregation_corrs),
            )
        )
    return results


def decompose_all(assertions: Sequence[ClassAssertion]) -> List[ClassAssertion]:
    """Decompose every assertion of a sequence (order-preserving)."""
    result: List[ClassAssertion] = []
    for assertion in assertions:
        result.extend(decompose(assertion))
    return result


def _pad(bins: List[List[MemberCorr]], count: int) -> List[List[MemberCorr]]:
    if len(bins) == count:
        return bins
    if len(bins) == 1:
        return [list(bins[0]) for _ in range(count)]
    raise DecompositionError(
        f"attribute and aggregation groups decompose into {len(bins)} and "
        f"{count} parts; no canonical alignment exists — split manually"
    )


def _split_group(
    corrs: Sequence[MemberCorr], context: str
) -> List[List[MemberCorr]]:
    """Partition one correspondence group into collision-free bins."""
    if not corrs:
        return [[]]
    usage: Dict[Tuple[str, str], List[int]] = defaultdict(list)
    for index, corr in enumerate(corrs):
        for name_key in _name_keys(corr):
            usage[name_key].append(index)
    colliding_names = {name for name, indexes in usage.items() if len(indexes) > 1}
    if not colliding_names:
        return [list(corrs)]

    colliding_indexes = [
        index
        for index, corr in enumerate(corrs)
        if any(name in colliding_names for name in _name_keys(corr))
    ]
    shared = [corr for i, corr in enumerate(corrs) if i not in colliding_indexes]

    # Every colliding correspondence must collide on exactly one name and
    # all collisions must share that one name's "hub" side; otherwise the
    # round-robin split below would be ambiguous.
    hubs = set()
    for index in colliding_indexes:
        names = [n for n in _name_keys(corrs[index]) if n in colliding_names]
        if len(names) != 1:
            raise DecompositionError(
                f"{context}: correspondence {corrs[index]} collides on "
                f"several names {names}; split the assertion manually"
            )
        hubs.add(names[0])
    if len(hubs) != 1:
        raise DecompositionError(
            f"{context}: overlapping collisions on {sorted(hubs)}; "
            f"split the assertion manually"
        )

    bins: List[List[MemberCorr]] = []
    for index in colliding_indexes:
        bins.append(list(shared) + [corrs[index]])
    return bins
