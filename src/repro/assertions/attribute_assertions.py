"""Attribute correspondences and ``with`` conditions (§4.1, Table 2).

An attribute correspondence relates a path of schema 1 to a path of
schema 2 with one of Table 2's kinds; an inclusion may carry a ``with``
qualifier ``att τ Cont`` restricting the right-hand side, as in::

    S1.stock-in-March-April.price-in-March ⊆ S2.stock.price with time = 'March'

Composed-into assertions (``city α(address) street-number``) additionally
name the new attribute.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..errors import AssertionSpecError
from ..logic.atoms import ComparisonOp
from .kinds import AttributeKind
from .paths import Path

_OP_ALIASES = {
    "=": ComparisonOp.EQ,
    "==": ComparisonOp.EQ,
    "≠": ComparisonOp.NE,
    "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    "≤": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
    "≥": ComparisonOp.GE,
}


@dataclasses.dataclass(frozen=True)
class WithCondition:
    """A predicate ``att τ Cont`` attached to a correspondence (§4.1).

    *attribute* is a path into one of the two schemas; *op* is drawn from
    ``{=, <, ≤, >, ≥, ≠}``; *constant* is the comparison constant.  In
    Principle 5 these conditions become the hyperedge predicates of the
    assertion graph (Fig 11(b)).
    """

    attribute: Path
    op: ComparisonOp
    constant: Any

    @classmethod
    def of(cls, attribute: "Path | str", op: str, constant: Any) -> "WithCondition":
        if isinstance(attribute, str):
            attribute = Path.parse(attribute)
        try:
            resolved = _OP_ALIASES[op]
        except KeyError:
            raise AssertionSpecError(
                f"unknown comparison operator {op!r} in with-condition"
            ) from None
        return cls(attribute, resolved, constant)

    def __str__(self) -> str:
        return f"with {self.attribute} {self.op} {self.constant!r}"


@dataclasses.dataclass(frozen=True)
class AttributeCorrespondence:
    """``left θ right`` for attributes, θ from Table 2.

    Parameters
    ----------
    left, right:
        Paths into the two schemas being integrated (left from the
        assertion's first schema, right from the second — orientation is
        fixed by the owning class assertion).
    kind:
        One of :class:`~repro.assertions.kinds.AttributeKind`.
    composed_name:
        For ``COMPOSED_INTO``: the new attribute's name (the ``x`` of
        ``α(x)``).
    condition:
        Optional ``with`` qualifier.
    """

    left: Path
    right: Path
    kind: AttributeKind
    composed_name: Optional[str] = None
    condition: Optional[WithCondition] = None

    def __post_init__(self) -> None:
        if self.left.is_class_path or self.right.is_class_path:
            # A class path on one side is legal only for nested
            # equivalences like  S1.Book ≡ S2.Author.book  (Example in
            # §4.1) — at least one side must descend into attributes.
            if self.left.is_class_path and self.right.is_class_path:
                raise AssertionSpecError(
                    f"attribute correspondence between two class paths "
                    f"{self.left} / {self.right}; use a class assertion"
                )
        if self.kind is AttributeKind.COMPOSED_INTO and not self.composed_name:
            raise AssertionSpecError(
                f"composed-into correspondence {self.left} α {self.right} "
                f"needs the new attribute name (α(x))"
            )
        if self.composed_name and self.kind is not AttributeKind.COMPOSED_INTO:
            raise AssertionSpecError(
                "composed_name is only meaningful for COMPOSED_INTO"
            )

    def flipped(self) -> "AttributeCorrespondence":
        """The correspondence as seen from the other schema's side."""
        if self.kind is AttributeKind.MORE_SPECIFIC:
            raise AssertionSpecError(
                "more-specific-than is directional; flip the owning assertion "
                "instead of the correspondence"
            )
        from .kinds import flipped as flip_kind

        return AttributeCorrespondence(
            self.right,
            self.left,
            flip_kind(self.kind),  # type: ignore[arg-type]
            self.composed_name,
            self.condition,
        )

    def __str__(self) -> str:
        if self.kind is AttributeKind.COMPOSED_INTO:
            core = f"{self.left} α({self.composed_name}) {self.right}"
        else:
            core = f"{self.left} {self.kind} {self.right}"
        return f"{core} {self.condition}" if self.condition else core
