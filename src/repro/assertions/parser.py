"""A textual DSL for correspondence assertions.

The paper assumes assertions are "supplied by designers"; this parser
gives designers a plain-text format that mirrors the layout of Figs 3-7::

    # Fig 4(a)
    assertion S1.person == S2.human
      attr S1.person.ssn# == S2.human.ssn#
      attr S1.person.full_name == S2.human.name
      attr S1.person.city alpha(address) S2.human.street-number
      attr S1.person.interests >= S2.human.hobby
    end

    # Example 3
    assertion S1(parent, brother) -> S2.uncle
      value S1.parent.Pssn# in S1.brother.brothers
      attr S1.brother.Bssn# == S2.uncle.Ussn#
      attr S1.parent.children >= S2.uncle.niece_nephew
    end

Operator spellings — ASCII first, the paper's Unicode accepted too:

=========  ==========  =================================
element    ASCII       Unicode
=========  ==========  =================================
class      ``==``      ``≡``
           ``<=``      ``⊆``
           ``>=``      ``⊇``
           ``^``       ``∩``
           ``!``       ``∅``
           ``->``      ``→``
attribute  as above plus ``alpha(x)`` (α(x)), ``beta`` (β)
agg        as above plus ``rev`` (ℵ)
value      ``=  !=  in  >=  ^  !``   /   ``≠ ∈ ⊇ ∩ ∅``
=========  ==========  =================================

``with`` conditions append to attribute lines:
``attr S1.a.x <= S2.b.y with S2.b.time = 'March'``.

Blocks end at ``end`` (or at the next ``assertion`` / end of input).
``#`` starts a comment.
"""

from __future__ import annotations

import re
import shlex
from typing import Any, List, Optional, Tuple

from ..errors import AssertionParseError
from .aggregation_assertions import AggregationCorrespondence
from .attribute_assertions import AttributeCorrespondence, WithCondition
from .class_assertions import ClassAssertion
from .kinds import AggregationKind, AttributeKind, ClassKind, ValueOp
from .paths import Path
from .value_assertions import ValueCorrespondence

_CLASS_OPS = {
    "==": ClassKind.EQUIVALENCE,
    "≡": ClassKind.EQUIVALENCE,
    "<=": ClassKind.SUBSET,
    "⊆": ClassKind.SUBSET,
    ">=": ClassKind.SUPERSET,
    "⊇": ClassKind.SUPERSET,
    "^": ClassKind.INTERSECTION,
    "∩": ClassKind.INTERSECTION,
    "!": ClassKind.EXCLUSION,
    "∅": ClassKind.EXCLUSION,
    "->": ClassKind.DERIVATION,
    "→": ClassKind.DERIVATION,
}

_ATTR_OPS = {
    "==": AttributeKind.EQUIVALENCE,
    "≡": AttributeKind.EQUIVALENCE,
    "<=": AttributeKind.SUBSET,
    "⊆": AttributeKind.SUBSET,
    ">=": AttributeKind.SUPERSET,
    "⊇": AttributeKind.SUPERSET,
    "^": AttributeKind.INTERSECTION,
    "∩": AttributeKind.INTERSECTION,
    "!": AttributeKind.EXCLUSION,
    "∅": AttributeKind.EXCLUSION,
    "beta": AttributeKind.MORE_SPECIFIC,
    "β": AttributeKind.MORE_SPECIFIC,
}

_AGG_OPS = {
    "==": AggregationKind.EQUIVALENCE,
    "≡": AggregationKind.EQUIVALENCE,
    "<=": AggregationKind.SUBSET,
    "⊆": AggregationKind.SUBSET,
    ">=": AggregationKind.SUPERSET,
    "⊇": AggregationKind.SUPERSET,
    "^": AggregationKind.INTERSECTION,
    "∩": AggregationKind.INTERSECTION,
    "!": AggregationKind.EXCLUSION,
    "∅": AggregationKind.EXCLUSION,
    "rev": AggregationKind.REVERSE,
    "ℵ": AggregationKind.REVERSE,
}

_VALUE_OPS = {
    "=": ValueOp.EQ,
    "!=": ValueOp.NE,
    "≠": ValueOp.NE,
    "in": ValueOp.IN,
    "∈": ValueOp.IN,
    ">=": ValueOp.SUPSET,
    "⊇": ValueOp.SUPSET,
    "^": ValueOp.INTERSECT,
    "∩": ValueOp.INTERSECT,
    "!": ValueOp.DISJOINT,
    "∅": ValueOp.DISJOINT,
}

_ALPHA = re.compile(r"^(?:alpha|α)\((?P<name>[^)]+)\)$")
_MULTI_HEAD = re.compile(
    r"^(?P<schema>[^.()\s]+)\((?P<classes>[^)]*)\)$"
)


def _strip_comment(line: str) -> str:
    """Drop a trailing comment.

    ``#`` starts a comment only at line start or after whitespace — the
    paper's attribute names (``Pssn#``, ``ssn#``) contain ``#`` and must
    survive.
    """
    in_quote: Optional[str] = None
    for index, char in enumerate(line):
        if in_quote:
            if char == in_quote:
                in_quote = None
        elif char in "'\"":
            in_quote = char
        elif char == "#" and (index == 0 or line[index - 1].isspace()):
            return line[:index]
    return line


def _tokens(line: str, line_no: int) -> List[str]:
    lexer = shlex.shlex(line, posix=False)
    lexer.whitespace_split = True
    lexer.commenters = ""
    try:
        return list(lexer)
    except ValueError as exc:
        raise AssertionParseError(str(exc), line_no, line) from None


def _constant(token: str) -> Any:
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token


def _parse_head(tokens: List[str], line_no: int, line: str) -> Tuple[ClassKind, Tuple[Path, ...], Path]:
    # Re-join a parenthesized source list that whitespace split apart:
    # ``S1(parent, brother)`` tokenizes as two tokens.
    if tokens and "(" in tokens[0] and ")" not in tokens[0]:
        merged = tokens[0]
        rest = tokens[1:]
        while rest and ")" not in merged:
            merged += rest.pop(0)
        tokens = [merged] + rest
    if len(tokens) != 3:
        raise AssertionParseError(
            "assertion head must be '<left> <op> <right>'", line_no, line
        )
    left_text, op_text, right_text = tokens
    try:
        kind = _CLASS_OPS[op_text]
    except KeyError:
        raise AssertionParseError(
            f"unknown class operator {op_text!r}", line_no, line
        ) from None
    multi = _MULTI_HEAD.match(left_text)
    if multi:
        schema = multi.group("schema")
        class_names = [c.strip() for c in multi.group("classes").split(",") if c.strip()]
        if not class_names:
            raise AssertionParseError("empty source class list", line_no, line)
        if kind is not ClassKind.DERIVATION and len(class_names) > 1:
            raise AssertionParseError(
                f"{kind} takes a single source class", line_no, line
            )
        sources = tuple(Path(schema, name) for name in class_names)
    else:
        sources = (Path.parse(left_text),)
    target = Path.parse(right_text)
    return kind, sources, target


class _Block:
    """Mutable accumulator for one assertion block."""

    def __init__(self, kind: ClassKind, sources: Tuple[Path, ...], target: Path) -> None:
        self.kind = kind
        self.sources = sources
        self.target = target
        self.value_corrs_left: List[ValueCorrespondence] = []
        self.value_corrs_right: List[ValueCorrespondence] = []
        self.attribute_corrs: List[AttributeCorrespondence] = []
        self.aggregation_corrs: List[AggregationCorrespondence] = []

    def build(self) -> ClassAssertion:
        return ClassAssertion(
            kind=self.kind,
            sources=self.sources,
            target=self.target,
            value_corrs_left=tuple(self.value_corrs_left),
            value_corrs_right=tuple(self.value_corrs_right),
            attribute_corrs=tuple(self.attribute_corrs),
            aggregation_corrs=tuple(self.aggregation_corrs),
        )


def parse(text: str) -> List[ClassAssertion]:
    """Parse DSL *text* into assertions (see module docstring)."""
    assertions: List[ClassAssertion] = []
    block: Optional[_Block] = None

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        tokens = _tokens(line, line_no)
        keyword = tokens[0].lower()

        if keyword == "assertion":
            if block is not None:
                assertions.append(block.build())
            kind, sources, target = _parse_head(tokens[1:], line_no, line)
            block = _Block(kind, sources, target)
            continue
        if keyword == "end":
            if block is None:
                raise AssertionParseError("'end' outside a block", line_no, line)
            assertions.append(block.build())
            block = None
            continue
        if block is None:
            raise AssertionParseError(
                f"expected 'assertion ...', got {tokens[0]!r}", line_no, line
            )
        if keyword == "attr":
            block.attribute_corrs.append(_parse_attr(tokens[1:], block, line_no, line))
        elif keyword == "agg":
            block.aggregation_corrs.append(
                _parse_agg(tokens[1:], block, line_no, line)
            )
        elif keyword == "value":
            corr = _parse_value(tokens[1:], line_no, line)
            if corr.schema == block.sources[0].schema:
                block.value_corrs_left.append(corr)
            elif corr.schema == block.target.schema:
                block.value_corrs_right.append(corr)
            else:
                raise AssertionParseError(
                    f"value correspondence schema {corr.schema!r} matches "
                    f"neither side of the assertion",
                    line_no,
                    line,
                )
        else:
            raise AssertionParseError(
                f"unknown directive {tokens[0]!r} (attr/agg/value/end)",
                line_no,
                line,
            )

    if block is not None:
        assertions.append(block.build())
    return assertions


def parse_file(path: str) -> List[ClassAssertion]:
    """Parse a DSL file."""
    with open(path, encoding="utf-8") as handle:
        return parse(handle.read())


def _orient(
    left: Path, right: Path, block: _Block, line_no: int, line: str
) -> Tuple[Path, Path, bool]:
    """Orient a cross-schema pair to the block's (left, right) schemas.

    Returns (left_path, right_path, swapped).
    """
    block_left = block.sources[0].schema
    block_right = block.target.schema
    if left.schema == block_left and right.schema == block_right:
        return left, right, False
    if left.schema == block_right and right.schema == block_left:
        return right, left, True
    raise AssertionParseError(
        f"correspondence schemas ({left.schema}, {right.schema}) do not "
        f"match the assertion's ({block_left}, {block_right})",
        line_no,
        line,
    )


def _parse_attr(
    tokens: List[str], block: _Block, line_no: int, line: str
) -> AttributeCorrespondence:
    condition: Optional[WithCondition] = None
    if "with" in [t.lower() for t in tokens]:
        split_at = [t.lower() for t in tokens].index("with")
        condition_tokens = tokens[split_at + 1:]
        tokens = tokens[:split_at]
        if len(condition_tokens) != 3:
            raise AssertionParseError(
                "with-condition must be '<path> <op> <const>'", line_no, line
            )
        condition = WithCondition.of(
            Path.parse(condition_tokens[0]),
            condition_tokens[1],
            _constant(condition_tokens[2]),
        )
    if len(tokens) != 3:
        raise AssertionParseError(
            "attr line must be '<left> <op> <right>'", line_no, line
        )
    left_text, op_text, right_text = tokens
    left = Path.parse(left_text)
    right = Path.parse(right_text)
    alpha = _ALPHA.match(op_text)
    composed_name: Optional[str] = None
    if alpha:
        kind = AttributeKind.COMPOSED_INTO
        composed_name = alpha.group("name").strip()
    else:
        try:
            kind = _ATTR_OPS[op_text]
        except KeyError:
            raise AssertionParseError(
                f"unknown attribute operator {op_text!r}", line_no, line
            ) from None
    left, right, swapped = _orient(left, right, block, line_no, line)
    if swapped and kind is not AttributeKind.MORE_SPECIFIC:
        from .kinds import flipped

        if kind is not AttributeKind.COMPOSED_INTO:
            kind = flipped(kind)  # type: ignore[assignment]
    elif swapped and kind is AttributeKind.MORE_SPECIFIC:
        raise AssertionParseError(
            "write 'beta' correspondences with the more-specific side first "
            "and in assertion orientation",
            line_no,
            line,
        )
    return AttributeCorrespondence(left, right, kind, composed_name, condition)


def _parse_agg(
    tokens: List[str], block: _Block, line_no: int, line: str
) -> AggregationCorrespondence:
    if len(tokens) != 3:
        raise AssertionParseError(
            "agg line must be '<left> <op> <right>'", line_no, line
        )
    left_text, op_text, right_text = tokens
    try:
        kind = _AGG_OPS[op_text.lower()]
    except KeyError:
        raise AssertionParseError(
            f"unknown aggregation operator {op_text!r}", line_no, line
        ) from None
    left, right, swapped = _orient(
        Path.parse(left_text), Path.parse(right_text), block, line_no, line
    )
    if swapped:
        from .kinds import flipped

        kind = flipped(kind)  # type: ignore[assignment]
    return AggregationCorrespondence(left, right, kind)


def _parse_value(tokens: List[str], line_no: int, line: str) -> ValueCorrespondence:
    if len(tokens) != 3:
        raise AssertionParseError(
            "value line must be '<left> <op> <right>'", line_no, line
        )
    left_text, op_text, right_text = tokens
    try:
        op = _VALUE_OPS[op_text.lower()]
    except KeyError:
        raise AssertionParseError(
            f"unknown value operator {op_text!r}", line_no, line
        ) from None
    return ValueCorrespondence(Path.parse(left_text), Path.parse(right_text), op)
