"""Assertion taxonomies — Tables 1, 2 and 3 of the paper.

Three enums mirror the three tables:

* :class:`ClassKind` — Table 1 (equivalence, inclusion, intersection,
  exclusion, **derivation**);
* :class:`AttributeKind` — Table 2 (the four set relationships plus
  composed-into ``α(x)`` and more-specific-than ``β``);
* :class:`AggregationKind` — Table 3 (the four set relationships plus
  reverse ``ℵ``).

Value correspondences between attributes of the *same* schema (§4.1)
use :class:`ValueOp`.

Inclusion is directional; we model both directions explicitly
(``SUBSET``/``SUPERSET``) with :func:`flipped` giving the mirror image, so
assertion sets can be looked up from either side.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple, Union


class ClassKind(enum.Enum):
    """Table 1: assertions for classes."""

    EQUIVALENCE = "≡"
    SUBSET = "⊆"
    SUPERSET = "⊇"
    INTERSECTION = "∩"
    EXCLUSION = "∅"
    DERIVATION = "→"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AttributeKind(enum.Enum):
    """Table 2: assertions for attributes."""

    EQUIVALENCE = "≡"
    SUBSET = "⊆"
    SUPERSET = "⊇"
    INTERSECTION = "∩"
    EXCLUSION = "∅"
    COMPOSED_INTO = "α"
    MORE_SPECIFIC = "β"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AggregationKind(enum.Enum):
    """Table 3: assertions for aggregation functions."""

    EQUIVALENCE = "≡"
    SUBSET = "⊆"
    SUPERSET = "⊇"
    INTERSECTION = "∩"
    EXCLUSION = "∅"
    REVERSE = "ℵ"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ValueOp(enum.Enum):
    """Intra-schema value correspondences (§4.1).

    ``=`` / ``≠`` for single-valued attributes; ``∈``, ``⊇``, ``∩``,
    ``∅`` and ``=`` for multi-valued ones.
    """

    EQ = "="
    NE = "≠"
    IN = "∈"
    SUPSET = "⊇"
    INTERSECT = "∩"
    DISJOINT = "∅"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


AnyKind = Union[ClassKind, AttributeKind, AggregationKind]

_FLIPPED: Dict[AnyKind, AnyKind] = {
    ClassKind.SUBSET: ClassKind.SUPERSET,
    ClassKind.SUPERSET: ClassKind.SUBSET,
    AttributeKind.SUBSET: AttributeKind.SUPERSET,
    AttributeKind.SUPERSET: AttributeKind.SUBSET,
    AggregationKind.SUBSET: AggregationKind.SUPERSET,
    AggregationKind.SUPERSET: AggregationKind.SUBSET,
}


def flipped(kind: AnyKind) -> AnyKind:
    """The kind as seen with left and right sides exchanged.

    Symmetric kinds (equivalence, intersection, exclusion, reverse,
    composed-into) are their own mirror; inclusions swap direction.
    Derivation and more-specific-than are inherently directional and
    must not be flipped — callers track their orientation instead.
    """
    if kind in (ClassKind.DERIVATION, AttributeKind.MORE_SPECIFIC):
        raise ValueError(f"{kind} is directional and cannot be flipped")
    return _FLIPPED.get(kind, kind)


#: The paper's Tables 1-3, as data, so documentation and tests can assert
#: the taxonomy is complete.
TABLE_1: List[Tuple[str, str]] = [
    ("≡", "equivalence"),
    ("⊆, ⊇", "inclusion"),
    ("∩", "intersection"),
    ("∅", "exclusion"),
    ("→", "derivation"),
]

TABLE_2: List[Tuple[str, str]] = [
    ("≡", "equivalence"),
    ("⊆, ⊇", "inclusion"),
    ("∩", "intersection"),
    ("∅", "exclusion"),
    ("α(x)", "composed-into"),
    ("β", "more-specific-than"),
]

TABLE_3: List[Tuple[str, str]] = [
    ("≡", "equivalence"),
    ("⊆, ⊇", "inclusion"),
    ("∩", "intersection"),
    ("∅", "exclusion"),
    ("ℵ", "reverse"),
]


def render_table(rows: List[Tuple[str, str]], title: str) -> str:
    """Render one of the taxonomy tables as aligned text."""
    width = max(len(symbol) for symbol, _ in rows)
    lines = [title]
    for symbol, meaning in rows:
        lines.append(f"  {symbol.ljust(width)}  {meaning}")
    return "\n".join(lines)
