"""Assertion-set analysis: consistency lints before integration runs.

Assertions are hand-written by DBAs ("given by users or by DBAs", §4);
mistakes surface late and confusingly during integration.  This module
checks a set against its two schemas up front and reports *findings* —
none of them fatal (mutually inclusive declarations — ⊆ both ways —
are already rejected eagerly by :class:`AssertionSet` as conflicts),
but each is something a designer probably wants to see:

* ``equivalence-fan`` — one class declared equivalent to several
  counterparts (legal, triggers Principle 1 absorption, but often a
  typo);
* ``assertion-under-exclusion`` — an assertion between descendants of an
  exclusion/derivation pair (§6.1 observation 3's "something strange");
* ``redundant-inclusion`` — ``A ⊆ B`` where B is a local ancestor of
  another declared target (Fig 8: the link would be dropped anyway);
* ``unmentioned-class`` — a class no assertion touches (it will be
  copied verbatim; a completeness hint, not an error).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Set, Tuple

from ..model.schema import Schema
from .assertion_set import AssertionSet
from .kinds import ClassKind


@dataclasses.dataclass(frozen=True)
class Finding:
    """One analysis finding."""

    kind: str
    message: str
    concepts: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


def analyze(
    assertions: AssertionSet, left: Schema, right: Schema
) -> List[Finding]:
    """Run all lints; findings are ordered by severity class."""
    findings: List[Finding] = []
    findings += _equivalence_fans(assertions, left, right)
    findings += _under_exclusion(assertions, left, right)
    findings += _redundant_inclusions(assertions, left, right)
    findings += _unmentioned(assertions, left, right)
    return findings


def _pairs_by_kind(
    assertions: AssertionSet, left: Schema, right: Schema
) -> Dict[ClassKind, List[Tuple[str, str]]]:
    result: Dict[ClassKind, List[Tuple[str, str]]] = defaultdict(list)
    for class1 in left.class_names:
        for class2 in right.class_names:
            kind = assertions.kind_of(class1, class2)
            if kind is not None:
                result[kind].append((class1, class2))
    return result


def _equivalence_fans(assertions, left, right) -> List[Finding]:
    findings = []
    partners_left: Dict[str, List[str]] = defaultdict(list)
    partners_right: Dict[str, List[str]] = defaultdict(list)
    for class1, class2 in _pairs_by_kind(assertions, left, right).get(
        ClassKind.EQUIVALENCE, ()
    ):
        partners_left[class1].append(class2)
        partners_right[class2].append(class1)
    for class1, partners in sorted(partners_left.items()):
        if len(partners) > 1:
            findings.append(
                Finding(
                    "equivalence-fan",
                    f"{left.name}.{class1} is declared equivalent to "
                    f"{len(partners)} classes ({', '.join(sorted(partners))}); "
                    f"they will all merge into one — check this is intended",
                    (class1, *partners),
                )
            )
    for class2, partners in sorted(partners_right.items()):
        if len(partners) > 1:
            findings.append(
                Finding(
                    "equivalence-fan",
                    f"{right.name}.{class2} is declared equivalent to "
                    f"{len(partners)} classes ({', '.join(sorted(partners))}); "
                    f"they will all merge into one — check this is intended",
                    (class2, *partners),
                )
            )
    return findings


def _under_exclusion(assertions, left, right) -> List[Finding]:
    findings = []
    pairs = _pairs_by_kind(assertions, left, right)
    blocking = pairs.get(ClassKind.EXCLUSION, []) + pairs.get(
        ClassKind.DERIVATION, []
    )
    for class1, class2 in blocking:
        family1 = [class1] + sorted(left.descendants(class1))
        family2 = [class2] + sorted(right.descendants(class2))
        for d1 in family1:
            for d2 in family2:
                if (d1, d2) == (class1, class2):
                    continue
                if assertions.kind_of(d1, d2) is not None:
                    findings.append(
                        Finding(
                            "assertion-under-exclusion",
                            f"assertion between {d1!r} and {d2!r} sits below "
                            f"the {assertions.kind_of(class1, class2)} pair "
                            f"({class1}, {class2}) — §6.1 observation 3: "
                            f"confirm it is intended",
                            (d1, d2),
                        )
                    )
    return findings


def _redundant_inclusions(assertions, left, right) -> List[Finding]:
    findings = []
    targets_of: Dict[str, List[str]] = defaultdict(list)
    for class1, class2 in _pairs_by_kind(assertions, left, right).get(
        ClassKind.SUBSET, ()
    ):
        targets_of[class1].append(class2)
    for class1, targets in sorted(targets_of.items()):
        for target in targets:
            implied = any(
                other != target and right.is_subclass(other, target)
                for other in targets
            )
            if implied:
                findings.append(
                    Finding(
                        "redundant-inclusion",
                        f"{left.name}.{class1} ⊆ {right.name}.{target} is "
                        f"implied by a more specific declared inclusion "
                        f"(Fig 8); the link would be dropped anyway",
                        (class1, target),
                    )
                )
    return findings


def _unmentioned(assertions, left, right) -> List[Finding]:
    findings = []
    for schema in (left, right):
        mentioned: Set[str] = set(assertions.mentioned_classes(schema.name))
        for class_name in schema.class_names:
            if class_name not in mentioned:
                findings.append(
                    Finding(
                        "unmentioned-class",
                        f"{schema.name}.{class_name} appears in no assertion; "
                        f"it will be copied verbatim (default strategy 1)",
                        (class_name,),
                    )
                )
    return findings


def report(assertions: AssertionSet, left: Schema, right: Schema) -> str:
    """Printable analysis report."""
    findings = analyze(assertions, left, right)
    if not findings:
        return "assertion analysis: no findings"
    lines = [f"assertion analysis: {len(findings)} finding(s)"]
    lines += [f"  {finding}" for finding in findings]
    return "\n".join(lines)
