"""Dotted paths into class structure — Definition 4.1.

A path w.r.t. a class ``C`` is ``C•ai•aij•...•b`` where each step is an
attribute of the (class-typed) previous step and the final element ``b``
either refers to the *values* reached (plain form) or — written quoted,
``C•ai•..•"a"`` — to the attribute/aggregation *name* itself (Example 1:
``Author•book•"title"`` refers to the string ``"title"``).

Paths appear everywhere in assertions: attribute correspondences, value
correspondences and ``with`` conditions.  :class:`Path` also carries the
schema qualifier (``S1•Book•author•name``) since assertions always relate
concepts of two schemas.

Rendering uses ``.`` (ASCII) while ``•`` is accepted on input.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..errors import PathError
from ..model.attributes import ClassType
from ..model.schema import Schema

BULLET = "•"


@dataclasses.dataclass(frozen=True, order=True)
class Path:
    """A schema-qualified path ``schema.cls.e1.e2...`` (Definition 4.1)."""

    schema: str
    class_name: str
    elements: Tuple[str, ...] = ()
    name_reference: bool = False

    def __post_init__(self) -> None:
        if not self.schema or not self.class_name:
            raise PathError("a path needs a schema and a class name")
        if self.name_reference and not self.elements:
            raise PathError(
                f"name-reference path on {self.schema}.{self.class_name} "
                "needs at least one element to name"
            )
        for element in self.elements:
            if not element:
                raise PathError("path elements must be non-empty")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse ``S1.Book.author.name`` / ``S2•Author•book•"title"``."""
        cleaned = text.strip().replace(BULLET, ".")
        name_reference = False
        if cleaned.endswith('"'):
            head, _, quoted = cleaned.rstrip('"').rpartition('."')
            if not head:
                raise PathError(f"malformed name-reference path {text!r}")
            cleaned = f"{head}.{quoted}"
            name_reference = True
        parts = [p for p in cleaned.split(".") if p]
        if len(parts) < 2:
            raise PathError(
                f"a path needs at least schema and class: {text!r}"
            )
        return cls(parts[0], parts[1], tuple(parts[2:]), name_reference)

    @classmethod
    def attribute(cls, schema: str, class_name: str, *elements: str) -> "Path":
        """Value-referring path builder."""
        return cls(schema, class_name, elements)

    def to_class(self) -> "Path":
        """The bare class path ``schema.cls`` under this path."""
        return Path(self.schema, self.class_name)

    def child(self, element: str) -> "Path":
        """This path extended by one attribute step."""
        return Path(self.schema, self.class_name, self.elements + (element,))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def is_class_path(self) -> bool:
        """True for a bare ``schema.cls`` path (no attribute steps)."""
        return not self.elements

    @property
    def terminal(self) -> Optional[str]:
        """The final attribute element, None for class paths."""
        return self.elements[-1] if self.elements else None

    @property
    def descriptor(self) -> str:
        """The dotted attribute descriptor below the class (``author.name``).

        This is the flat descriptor used in O-term bindings for nested
        paths; empty for class paths.
        """
        return ".".join(self.elements)

    def canonical(self) -> str:
        """A stable textual key identifying this path."""
        body = ".".join((self.schema, self.class_name) + self.elements)
        return f'{body}""' if self.name_reference else body

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, schema: Schema) -> None:
        """Check the path against *schema*; raises :class:`PathError`.

        Walks attribute steps through class-typed attributes exactly as
        Definition 4.1 requires: intermediate elements must be complex
        attributes, the terminal element may be any attribute or
        aggregation function.
        """
        if schema.name != self.schema:
            raise PathError(
                f"path {self} is qualified with schema {self.schema!r}, "
                f"resolved against {schema.name!r}"
            )
        if self.class_name not in schema:
            raise PathError(
                f"path {self}: schema {schema.name!r} has no class "
                f"{self.class_name!r}"
            )
        current = schema.effective_class(self.class_name)
        for position, element in enumerate(self.elements):
            if not current.has_member(element):
                raise PathError(
                    f"path {self}: class {current.name!r} has no member "
                    f"{element!r}"
                )
            is_terminal = position == len(self.elements) - 1
            if is_terminal:
                return
            attribute = current.get_attribute(element)
            if attribute is not None and isinstance(attribute.value_type, ClassType):
                current = schema.effective_class(attribute.value_type.class_name)
                continue
            aggregation = current.get_aggregation(element)
            if aggregation is not None:
                current = schema.effective_class(aggregation.range_class)
                continue
            raise PathError(
                f"path {self}: member {element!r} of class {current.name!r} "
                f"is not class-typed, cannot continue the path"
            )

    def resolves_in(self, schema: Schema) -> bool:
        """Boolean form of :meth:`resolve`."""
        try:
            self.resolve(schema)
        except PathError:
            return False
        return True

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [self.schema, self.class_name, *self.elements]
        if self.name_reference:
            parts[-1] = f'"{parts[-1]}"'
        return ".".join(parts)
