"""Class-level correspondence assertions (§4, Fig 3).

A :class:`ClassAssertion` is the full structured declaration of Fig 3::

    S1(A1, ..., An)  θ  S2.B                 (θ from Table 1)
    value correspondence of attributes in S1: ...
    value correspondence of attributes in S2: ...
    attribute correspondence: ...
    agg_function correspondence: ...

For the five set-relationship kinds the left side is a single class; the
derivation kind allows several source classes (``S1(parent, brother) →
S2.uncle``).  All four correspondence groups are optional — most of the
paper's examples fill only some.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

from ..errors import AssertionSpecError, PathError
from ..model.schema import Schema
from .aggregation_assertions import AggregationCorrespondence
from .attribute_assertions import AttributeCorrespondence
from .kinds import ClassKind, flipped as flip_kind
from .paths import Path
from .value_assertions import ValueCorrespondence


@dataclasses.dataclass
class ClassAssertion:
    """One correspondence assertion between classes of two schemas.

    Parameters
    ----------
    kind:
        A :class:`~repro.assertions.kinds.ClassKind`.
    sources:
        Class paths on the left side.  Exactly one for the set kinds; one
        or more for DERIVATION.  All must share one schema.
    target:
        The right-side class path.
    value_corrs_left / value_corrs_right:
        Intra-schema value correspondences of the left / right schema.
    attribute_corrs / aggregation_corrs:
        Cross-schema member correspondences (oriented left → right).
    """

    kind: ClassKind
    sources: Tuple[Path, ...]
    target: Path
    value_corrs_left: Tuple[ValueCorrespondence, ...] = ()
    value_corrs_right: Tuple[ValueCorrespondence, ...] = ()
    attribute_corrs: Tuple[AttributeCorrespondence, ...] = ()
    aggregation_corrs: Tuple[AggregationCorrespondence, ...] = ()

    def __post_init__(self) -> None:
        if not self.sources:
            raise AssertionSpecError("an assertion needs at least one source class")
        if self.kind is not ClassKind.DERIVATION and len(self.sources) != 1:
            raise AssertionSpecError(
                f"{self.kind} assertions relate exactly one class per side; "
                f"got {len(self.sources)} sources"
            )
        schemas = {path.schema for path in self.sources}
        if len(schemas) != 1:
            raise AssertionSpecError(
                f"all source classes must come from one schema, got {schemas}"
            )
        if self.target.schema in schemas:
            raise AssertionSpecError(
                "assertions relate classes of two different schemas; both "
                f"sides are in {self.target.schema!r}"
            )
        for path in self.sources + (self.target,):
            if not path.is_class_path:
                raise AssertionSpecError(
                    f"assertion sides must be class paths, got {path}"
                )
        for corr in self.value_corrs_left:
            if corr.schema != self.left_schema:
                raise AssertionSpecError(
                    f"left value correspondence {corr} is not in schema "
                    f"{self.left_schema!r}"
                )
        for corr in self.value_corrs_right:
            if corr.schema != self.right_schema:
                raise AssertionSpecError(
                    f"right value correspondence {corr} is not in schema "
                    f"{self.right_schema!r}"
                )
        for corr in self.attribute_corrs:
            self._check_orientation(corr.left, corr.right, str(corr))
        for corr in self.aggregation_corrs:
            self._check_orientation(corr.left, corr.right, str(corr))

    def _check_orientation(self, left: Path, right: Path, text: str) -> None:
        if left.schema != self.left_schema or right.schema != self.right_schema:
            raise AssertionSpecError(
                f"correspondence {text} is not oriented "
                f"{self.left_schema} → {self.right_schema}"
            )

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def left_schema(self) -> str:
        return self.sources[0].schema

    @property
    def right_schema(self) -> str:
        return self.target.schema

    @property
    def source(self) -> Path:
        """The single source class (set-relationship kinds only)."""
        if len(self.sources) != 1:
            raise AssertionSpecError(
                f"derivation assertion {self} has {len(self.sources)} sources"
            )
        return self.sources[0]

    @property
    def source_classes(self) -> Tuple[str, ...]:
        return tuple(path.class_name for path in self.sources)

    @property
    def target_class(self) -> str:
        return self.target.class_name

    def classes_of(self, schema_name: str) -> Tuple[str, ...]:
        """The class names this assertion mentions in *schema_name*."""
        if schema_name == self.left_schema:
            return self.source_classes
        if schema_name == self.right_schema:
            return (self.target_class,)
        return ()

    def member_correspondences(self):
        """Attribute and aggregation correspondences, interleaved."""
        return tuple(self.attribute_corrs) + tuple(self.aggregation_corrs)

    # ------------------------------------------------------------------
    # orientation
    # ------------------------------------------------------------------
    def flipped(self) -> "ClassAssertion":
        """The same assertion with left and right exchanged.

        Derivation assertions are inherently directional; flipping one
        raises (declare the other direction separately, as Figs 6-7 do).
        """
        if self.kind is ClassKind.DERIVATION:
            raise AssertionSpecError(
                "derivation assertions are directional and cannot be flipped"
            )
        return ClassAssertion(
            kind=flip_kind(self.kind),  # type: ignore[arg-type]
            sources=(self.target,),
            target=self.source,
            value_corrs_left=self.value_corrs_right,
            value_corrs_right=self.value_corrs_left,
            attribute_corrs=tuple(c.flipped() for c in self.attribute_corrs),
            aggregation_corrs=tuple(c.flipped() for c in self.aggregation_corrs),
        )

    # ------------------------------------------------------------------
    # validation against actual schemas
    # ------------------------------------------------------------------
    def validate(self, left: Schema, right: Schema) -> None:
        """Resolve every path against the two schemas.

        *left* must be the schema of the source classes, *right* of the
        target.  Raises :class:`PathError` on any dangling path, and
        :class:`AssertionSpecError` when the schemas are passed in the
        wrong order.
        """
        if left.name != self.left_schema or right.name != self.right_schema:
            raise AssertionSpecError(
                f"assertion {self.head()} validates against "
                f"({self.left_schema}, {self.right_schema}); got "
                f"({left.name}, {right.name})"
            )
        for path in self.sources:
            path.resolve(left)
        self.target.resolve(right)
        for corr in self.value_corrs_left:
            corr.left.resolve(left)
            corr.right.resolve(left)
        for corr in self.value_corrs_right:
            corr.left.resolve(right)
            corr.right.resolve(right)
        for corr in self.attribute_corrs:
            corr.left.resolve(left)
            corr.right.resolve(right)
            if corr.condition is not None:
                condition_schema = (
                    left if corr.condition.attribute.schema == left.name else right
                )
                corr.condition.attribute.resolve(condition_schema)
        for corr in self.aggregation_corrs:
            corr.left.resolve(left)
            corr.right.resolve(right)
            left_class = left.effective_class(corr.left.class_name)
            right_class = right.effective_class(corr.right.class_name)
            if left_class.get_aggregation(corr.left_function) is None:
                raise PathError(
                    f"{corr}: {corr.left_function!r} is not an aggregation "
                    f"function of {corr.left.class_name!r}"
                )
            if right_class.get_aggregation(corr.right_function) is None:
                raise PathError(
                    f"{corr}: {corr.right_function!r} is not an aggregation "
                    f"function of {corr.right.class_name!r}"
                )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def head(self) -> str:
        """The one-line head, e.g. ``S1(parent, brother) → S2.uncle``."""
        if self.kind is ClassKind.DERIVATION and len(self.sources) > 1:
            inside = ", ".join(path.class_name for path in self.sources)
            left_text = f"{self.left_schema}({inside})"
        else:
            left_text = str(self.sources[0])
        return f"{left_text} {self.kind} {self.target}"

    def describe(self) -> str:
        """Multi-line rendering in the layout of Fig 3 / Fig 4."""
        lines = [self.head()]
        if self.value_corrs_left:
            lines.append(f"  value correspondence of attributes in {self.left_schema}:")
            lines.extend(f"    {corr}" for corr in self.value_corrs_left)
        if self.value_corrs_right:
            lines.append(f"  value correspondence of attributes in {self.right_schema}:")
            lines.extend(f"    {corr}" for corr in self.value_corrs_right)
        if self.attribute_corrs:
            lines.append("  attribute correspondence:")
            lines.extend(f"    {corr}" for corr in self.attribute_corrs)
        if self.aggregation_corrs:
            lines.append("  agg_function correspondence:")
            lines.extend(f"    {corr}" for corr in self.aggregation_corrs)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.head()


def equivalence(
    source: "Path | str",
    target: "Path | str",
    attribute_corrs: Sequence[AttributeCorrespondence] = (),
    aggregation_corrs: Sequence[AggregationCorrespondence] = (),
) -> ClassAssertion:
    """Shorthand constructor for ``A ≡ B`` assertions."""
    return _simple(
        ClassKind.EQUIVALENCE, source, target, attribute_corrs, aggregation_corrs
    )


def inclusion(
    source: "Path | str",
    target: "Path | str",
    attribute_corrs: Sequence[AttributeCorrespondence] = (),
    aggregation_corrs: Sequence[AggregationCorrespondence] = (),
) -> ClassAssertion:
    """Shorthand constructor for ``A ⊆ B`` assertions."""
    return _simple(ClassKind.SUBSET, source, target, attribute_corrs, aggregation_corrs)


def intersection(
    source: "Path | str",
    target: "Path | str",
    attribute_corrs: Sequence[AttributeCorrespondence] = (),
    aggregation_corrs: Sequence[AggregationCorrespondence] = (),
) -> ClassAssertion:
    """Shorthand constructor for ``A ∩ B`` assertions."""
    return _simple(
        ClassKind.INTERSECTION, source, target, attribute_corrs, aggregation_corrs
    )


def exclusion(
    source: "Path | str",
    target: "Path | str",
    attribute_corrs: Sequence[AttributeCorrespondence] = (),
    aggregation_corrs: Sequence[AggregationCorrespondence] = (),
) -> ClassAssertion:
    """Shorthand constructor for ``A ∅ B`` assertions."""
    return _simple(
        ClassKind.EXCLUSION, source, target, attribute_corrs, aggregation_corrs
    )


def derivation(
    sources: Sequence["Path | str"],
    target: "Path | str",
    value_corrs_left: Sequence[ValueCorrespondence] = (),
    value_corrs_right: Sequence[ValueCorrespondence] = (),
    attribute_corrs: Sequence[AttributeCorrespondence] = (),
    aggregation_corrs: Sequence[AggregationCorrespondence] = (),
) -> ClassAssertion:
    """Shorthand constructor for ``S1(A1, ..., An) → S2.B`` assertions."""
    return ClassAssertion(
        kind=ClassKind.DERIVATION,
        sources=tuple(_as_path(s) for s in sources),
        target=_as_path(target),
        value_corrs_left=tuple(value_corrs_left),
        value_corrs_right=tuple(value_corrs_right),
        attribute_corrs=tuple(attribute_corrs),
        aggregation_corrs=tuple(aggregation_corrs),
    )


def _as_path(value: "Path | str") -> Path:
    return value if isinstance(value, Path) else Path.parse(value)


def _simple(
    kind: ClassKind,
    source: "Path | str",
    target: "Path | str",
    attribute_corrs: Sequence[AttributeCorrespondence],
    aggregation_corrs: Sequence[AggregationCorrespondence],
) -> ClassAssertion:
    return ClassAssertion(
        kind=kind,
        sources=(_as_path(source),),
        target=_as_path(target),
        attribute_corrs=tuple(attribute_corrs),
        aggregation_corrs=tuple(aggregation_corrs),
    )
