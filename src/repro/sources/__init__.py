"""Heterogeneous component sources (§3 over real storage).

Source adapters apply the paper's relational→OO transformation and
per-attribute data mappings to rows that actually live somewhere — a
sqlite file, a directory of CSVs, a directory of JSON record arrays —
and expose the result through the same
:class:`~repro.model.store.ComponentStore` interface as the in-memory
stores, so the whole federation runtime (transport, executor, planner,
sharding, extent cache, service tenants) works unchanged over disk.

Public surface: the adapter base and its three disk backends, the
in-memory backend used as the parity baseline, the hostable
:class:`SourceDatabase` facade, the declaration vocabulary
(:class:`RelationSpec`, :class:`ColumnMapping`, :class:`LinearMapping`)
and the ``federation.json`` manifest loader.
"""

from .base import (
    ColumnMapping,
    LinearMapping,
    MemorySourceAdapter,
    RelationSpec,
    SourceAdapter,
    SourceDatabase,
    coerce_value,
)
from .csv_source import CsvSourceAdapter
from .json_source import JsonSourceAdapter
from .manifest import (
    ADAPTER_KINDS,
    MANIFEST_NAME,
    build_adapter,
    load_source_federation,
    write_manifest,
)
from .sqlite_source import SqliteSourceAdapter

__all__ = [
    "ADAPTER_KINDS",
    "ColumnMapping",
    "CsvSourceAdapter",
    "JsonSourceAdapter",
    "LinearMapping",
    "MANIFEST_NAME",
    "MemorySourceAdapter",
    "RelationSpec",
    "SourceAdapter",
    "SourceDatabase",
    "SqliteSourceAdapter",
    "build_adapter",
    "coerce_value",
    "load_source_federation",
    "write_manifest",
]
