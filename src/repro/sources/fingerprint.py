"""Content-hash file fingerprints for source-version freshness checks.

The disk adapters used to version themselves from ``(name, mtime_ns,
size)``.  That fingerprint is cheap but can *alias*: two writes landing
within one mtime granule (coarse filesystem clocks, fast test loops,
``os.utime`` games) that also preserve the byte size produce the same
stat triple — and therefore the same version — so the extent cache kept
serving the pre-write rows as "fresh".  The per-tenant generation
machinery never saw a version step at all.

:class:`FileFingerprinter` closes the hazard by deriving the version
from the file **contents** (a CRC over the bytes), while keeping stat
cheapness for the steady state: the content CRC is memoized against the
``(mtime_ns, size)`` observed when it was computed, and the memo is
only trusted once the file has been quiet for :data:`RACY_WINDOW_NS` —
the same racy-stat discipline git applies to its index.  Within the
window every check re-reads the bytes, so a same-mtime same-size
rewrite can never hide.

Because the version is a pure function of file names and bytes, it is
also deterministic **across processes** — a restarted federation whose
:class:`~repro.runtime.persistence.PersistentExtentStore` recorded
entries at version ``v`` re-derives the same ``v`` from unchanged files
and serves them scan-free.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from pathlib import Path
from typing import Dict, Iterable, Tuple

#: how long (ns) a file must have been unmodified before its memoized
#: content CRC is trusted; inside the window every check re-hashes, so
#: writes inside one mtime granule cannot alias
RACY_WINDOW_NS = 2_000_000_000

_CHUNK = 1 << 16


class FileFingerprinter:
    """Version files by content, with racy-stat-safe memoization."""

    def __init__(self, racy_window_ns: int = RACY_WINDOW_NS) -> None:
        self._racy_window_ns = racy_window_ns
        self._lock = threading.Lock()
        # path -> (mtime_ns, size, hashed_at_ns, content_crc)
        self._memo: Dict[Path, Tuple[int, int, int, int]] = {}

    def version(self, paths: Iterable[Path]) -> int:
        """One version integer over *paths* (names + contents).

        Raises :class:`OSError` when a file cannot be statted or read;
        callers wrap that in their source-unavailable vocabulary.
        """
        digest = 0
        for path in paths:
            digest = zlib.crc32(
                f"{path.name}:{self.content_crc(path)};".encode("utf-8"), digest
            )
        return digest

    def content_crc(self, path: Path) -> int:
        """The CRC of *path*'s bytes, via the stat memo when trustable."""
        stat = os.stat(path)
        with self._lock:
            memo = self._memo.get(path)
        if memo is not None:
            mtime_ns, size, hashed_at_ns, crc = memo
            quiet = hashed_at_ns - stat.st_mtime_ns > self._racy_window_ns
            if quiet and mtime_ns == stat.st_mtime_ns and size == stat.st_size:
                return crc
        crc = 0
        with open(path, "rb") as handle:
            while True:
                chunk = handle.read(_CHUNK)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
        # re-stat: the file may have changed while we read it; memoize
        # against the post-read observation so a concurrent write is
        # caught by the next mtime/size comparison
        stat = os.stat(path)
        with self._lock:
            self._memo[path] = (
                stat.st_mtime_ns,
                stat.st_size,
                time.time_ns(),
                crc,
            )
        return crc
