"""Source-directory manifests: a federation described on disk.

A *source directory* is a self-contained federation: one
``federation.json`` manifest naming the component sources (kind, path,
agent/system names, optionally declared relation specs and §3 data
mappings) plus an assertion file in the DSL.  ``repro query
--source-dir DIR`` and a tenant's ``source_dir=`` both load one:

.. code-block:: json

    {
      "assertions": "assertions.dsl",
      "sources": [
        {"schema": "university", "kind": "sqlite", "path": "university.db",
         "relations": [{"name": "person",
                        "columns": [["ssn", "string"], ["lvl", "string"]],
                        "primary_key": "ssn",
                        "foreign_keys": [["dept", "department", "code"]]}],
         "mappings": {"person": [{"column": "lvl", "attribute": "level",
                                  "kind": "triples", "type": "integer",
                                  "triples": [[1, "L1", 1.0]]}]}}
      ]
    }

Mapping kinds mirror the paper's three data-mapping forms: ``default``
(identity), ``triples`` (fuzzy ``(a, b; χ)`` with a threshold) and
``linear`` (the conversion function ``y = a·x + b``).  The module also
writes manifests (:func:`mapping_to_json` et al.) so the workload
generators can materialize a federation the loader reads back verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Type, Union

from ..errors import SourceConfigError, SourceUnavailableError
from ..federation.mappings import DataMapping, DefaultMapping, TripleMapping
from ..federation.relational import Column, ForeignKey
from ..model.datatypes import DataType
from .base import ColumnMapping, LinearMapping, RelationSpec, SourceAdapter, SourceDatabase
from .csv_source import CsvSourceAdapter
from .json_source import JsonSourceAdapter
from .sqlite_source import SqliteSourceAdapter

MANIFEST_NAME = "federation.json"

ADAPTER_KINDS: Dict[str, Type[SourceAdapter]] = {
    "sqlite": SqliteSourceAdapter,
    "csv": CsvSourceAdapter,
    "json": JsonSourceAdapter,
}


# ----------------------------------------------------------------------
# JSON → objects
# ----------------------------------------------------------------------
def relation_from_json(payload: Mapping[str, Any]) -> RelationSpec:
    try:
        name = payload["name"]
        columns = tuple(
            Column(column_name, DataType.parse(type_name))
            for column_name, type_name in payload["columns"]
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SourceConfigError(f"bad relation spec {payload!r}: {error}") from error
    foreign_keys = tuple(
        ForeignKey(*fk) for fk in payload.get("foreign_keys", ())
    )
    return RelationSpec(
        name,
        columns,
        primary_key=payload.get("primary_key", ""),
        foreign_keys=foreign_keys,
    )


def mapping_from_json(payload: Mapping[str, Any]) -> ColumnMapping:
    kind = payload.get("kind", "default")
    mapping: DataMapping
    if kind == "default":
        mapping = DefaultMapping()
    elif kind == "triples":
        mapping = TripleMapping(
            tuple((a, b, float(chi)) for a, b, chi in payload.get("triples", ())),
            threshold=float(payload.get("threshold", 0.0)),
        )
    elif kind == "linear":
        mapping = LinearMapping(
            a=float(payload.get("a", 1.0)),
            b=float(payload.get("b", 0.0)),
            as_int=bool(payload.get("as_int", False)),
        )
    else:
        raise SourceConfigError(
            f"unknown mapping kind {kind!r}; expected default, triples or linear"
        )
    try:
        column = payload["column"]
    except KeyError:
        raise SourceConfigError(f"mapping {payload!r} names no column") from None
    data_type = payload.get("type")
    return ColumnMapping(
        column=column,
        attribute=payload.get("attribute", ""),
        mapping=mapping,
        default=payload.get("default"),
        data_type=DataType.parse(data_type) if data_type else None,
    )


# ----------------------------------------------------------------------
# objects → JSON (manifest writing, used by the workload generators)
# ----------------------------------------------------------------------
def relation_to_json(spec: RelationSpec) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "name": spec.name,
        "columns": [[column.name, column.data_type.value] for column in spec.columns],
        "primary_key": spec.primary_key,
    }
    if spec.foreign_keys:
        payload["foreign_keys"] = [
            [fk.column, fk.target_relation, fk.target_column]
            for fk in spec.foreign_keys
        ]
    return payload


def mapping_to_json(mapping: ColumnMapping) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"column": mapping.column}
    if mapping.attribute:
        payload["attribute"] = mapping.attribute
    if mapping.data_type is not None:
        payload["type"] = mapping.data_type.value
    if mapping.default is not None:
        payload["default"] = mapping.default
    inner = mapping.mapping
    if isinstance(inner, TripleMapping):
        payload["kind"] = "triples"
        payload["triples"] = [list(triple) for triple in inner.triples]
        if inner.threshold:
            payload["threshold"] = inner.threshold
    elif isinstance(inner, LinearMapping):
        payload["kind"] = "linear"
        payload["a"] = inner.a
        payload["b"] = inner.b
        if inner.as_int:
            payload["as_int"] = True
    elif isinstance(inner, DefaultMapping):
        payload["kind"] = "default"
    else:
        raise SourceConfigError(
            f"mapping {inner!r} has no manifest form (use default, "
            f"TripleMapping or LinearMapping)"
        )
    return payload


# ----------------------------------------------------------------------
# loading a source directory
# ----------------------------------------------------------------------
def build_adapter(
    directory: Path, payload: Mapping[str, Any]
) -> SourceAdapter:
    """One manifest ``sources`` entry → a configured adapter."""
    kind = payload.get("kind", "")
    adapter_type = ADAPTER_KINDS.get(kind)
    if adapter_type is None:
        raise SourceConfigError(
            f"unknown source kind {kind!r}; expected one of "
            f"{sorted(ADAPTER_KINDS)}"
        )
    schema_name = payload.get("schema", "")
    if not schema_name:
        raise SourceConfigError(f"source entry {payload!r} names no schema")
    path = payload.get("path", "")
    if not path:
        raise SourceConfigError(f"source {schema_name!r} names no path")
    relations = (
        [relation_from_json(spec) for spec in payload["relations"]]
        if "relations" in payload
        else None
    )
    mappings = {
        relation: [mapping_from_json(entry) for entry in entries]
        for relation, entries in payload.get("mappings", {}).items()
    } or None
    return adapter_type(
        directory / path,
        name=schema_name,
        agent=payload.get("agent", f"agent-{schema_name}"),
        system=payload.get("system", ""),
        relations=relations,
        mappings=mappings,
    )


def load_source_federation(
    directory: Union[str, Path],
) -> Tuple[str, Dict[str, SourceDatabase]]:
    """Load a source directory: (assertion DSL text, schema → store).

    Stores come back keyed and named by their manifest ``schema`` so
    they host directly: one FSM-agent per source, schemas integrate and
    queries run with no further configuration.
    """
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except OSError as error:
        raise SourceUnavailableError(
            f"source directory {str(root)!r}: cannot read {MANIFEST_NAME}: {error}"
        ) from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise SourceConfigError(
            f"{MANIFEST_NAME} in {str(root)!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(manifest, dict) or not isinstance(
        manifest.get("sources"), list
    ):
        raise SourceConfigError(
            f"{MANIFEST_NAME} must be an object with a 'sources' array"
        )
    databases: Dict[str, SourceDatabase] = {}
    for entry in manifest["sources"]:
        if not isinstance(entry, dict):
            raise SourceConfigError(f"bad source entry {entry!r}")
        adapter = build_adapter(root, entry)
        if adapter.name in databases:
            raise SourceConfigError(
                f"duplicate source schema {adapter.name!r} in {MANIFEST_NAME}"
            )
        databases[adapter.name] = adapter.database()
    if not databases:
        raise SourceConfigError(f"{MANIFEST_NAME} declares no sources")
    assertions = ""
    assertion_file = manifest.get("assertions", "")
    if assertion_file:
        try:
            assertions = (root / assertion_file).read_text(encoding="utf-8")
        except OSError as error:
            raise SourceUnavailableError(
                f"source directory {str(root)!r}: cannot read assertion file "
                f"{assertion_file!r}: {error}"
            ) from error
    return assertions, databases


def write_manifest(
    directory: Union[str, Path],
    sources: Sequence[Mapping[str, Any]],
    assertions: Optional[str] = None,
    assertion_file: str = "assertions.dsl",
) -> Path:
    """Write ``federation.json`` (and the assertion file) into *directory*."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {"sources": list(sources)}
    if assertions is not None:
        manifest["assertions"] = assertion_file
        (root / assertion_file).write_text(assertions, encoding="utf-8")
    path = root / MANIFEST_NAME
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


__all__ = [
    "ADAPTER_KINDS",
    "MANIFEST_NAME",
    "build_adapter",
    "load_source_federation",
    "mapping_from_json",
    "mapping_to_json",
    "relation_from_json",
    "relation_to_json",
    "write_manifest",
]
