"""A JSON-directory component source.

One ``<relation>.json`` per relation, each holding a JSON array of flat
record objects.  JSON is semi-structured: discovery unions the keys seen
across records and infers each column's primitive type from its first
non-null value (bool → boolean, int → integer, float → real, str →
string); declared :class:`~repro.sources.base.RelationSpec`\\ s override
that, as with CSV.  Nested values (arrays, objects) have no place in the
§3 relational transformation and are rejected per record with a typed
:class:`~repro.errors.SourceFormatError`; an unparseable file is a
:class:`~repro.errors.SourceUnavailableError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SourceConfigError, SourceFormatError, SourceUnavailableError
from ..federation.relational import Column
from ..model.datatypes import DataType
from ..runtime.deltas import DeltaRecord
from .base import ColumnMapping, RelationSpec, SourceAdapter
from .fingerprint import FileFingerprinter

SUFFIX = ".json"


def _infer_type(value: Any) -> DataType:
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    return DataType.STRING


class JsonSourceAdapter(SourceAdapter):
    """Serve the §3 OO view of a directory of JSON record arrays."""

    kind = "json"

    def __init__(
        self,
        directory: Union[str, Path],
        name: str = "",
        agent: str = "agent1",
        system: str = "",
        relations: Optional[Sequence[RelationSpec]] = None,
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
        encoding: str = "utf-8",
    ) -> None:
        self.directory = Path(directory)
        self.encoding = encoding
        self._fingerprinter = FileFingerprinter()
        super().__init__(
            name or self.directory.name,
            agent=agent,
            system=system,
            relations=relations,
            mappings=mappings,
        )

    # ------------------------------------------------------------------
    def _files(self) -> List[Path]:
        if not self.directory.is_dir():
            raise SourceUnavailableError(
                f"json source {self.name!r}: no such directory "
                f"{str(self.directory)!r}"
            )
        return sorted(self.directory.glob(f"*{SUFFIX}"))

    def _load(self, relation_name: str) -> List[Any]:
        path = self.directory / f"{relation_name}{SUFFIX}"
        try:
            text = path.read_text(encoding=self.encoding)
        except OSError as error:
            raise SourceUnavailableError(
                f"json source {self.name!r}: cannot read {path.name!r}: {error}"
            ) from error
        try:
            records = json.loads(text)
        except json.JSONDecodeError as error:
            raise SourceUnavailableError(
                f"json source {self.name!r}: {path.name!r} is not valid JSON: "
                f"{error}"
            ) from error
        if not isinstance(records, list):
            raise SourceFormatError(
                self.name, relation_name, "top-level JSON value must be an array"
            )
        return records

    # ------------------------------------------------------------------
    def discover(self) -> Tuple[RelationSpec, ...]:
        files = self._files()
        if not files:
            raise SourceConfigError(
                f"json source {self.name!r}: {str(self.directory)!r} holds no "
                f"*{SUFFIX} files"
            )
        specs: List[RelationSpec] = []
        for path in files:
            records = self._load(path.stem)
            columns: Dict[str, Optional[DataType]] = {}
            for number, record in enumerate(records, start=1):
                if not isinstance(record, dict):
                    raise SourceFormatError(
                        self.name, path.stem, f"record {number} is not an object"
                    )
                for key, value in record.items():
                    if columns.get(key) is None:
                        columns[key] = None if value is None else _infer_type(value)
            if not columns:
                raise SourceFormatError(
                    self.name, path.stem, "no records to infer columns from"
                )
            specs.append(
                RelationSpec(
                    path.stem,
                    tuple(
                        Column(key, data_type or DataType.STRING)
                        for key, data_type in columns.items()
                    ),
                )
            )
        return tuple(specs)

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        for number, record in enumerate(self._load(relation.name), start=1):
            if not isinstance(record, dict):
                raise SourceFormatError(
                    self.name,
                    relation.name,
                    f"record {number} is not an object: {record!r}",
                )
            for key, value in record.items():
                if isinstance(value, (list, dict)):
                    raise SourceFormatError(
                        self.name,
                        relation.name,
                        f"record {number}, field {key!r}: nested values are "
                        f"not relational",
                    )
            yield {column: record.get(column) for column in relation.column_names}

    def source_version(self) -> int:
        """Fingerprint the files' *contents* (stat-memoized), so rapid
        same-mtime rewrites cannot alias to the pre-write version."""
        try:
            return self._fingerprinter.version(self._files())
        except OSError as error:
            raise SourceUnavailableError(
                f"json source {self.name!r}: cannot read its files: {error}"
            ) from error

    # ------------------------------------------------------------------
    # the write path (observed writes feed the delta log)
    # ------------------------------------------------------------------
    def _dump(self, relation_name: str, records: List[Any]) -> None:
        path = self.directory / f"{relation_name}{SUFFIX}"
        try:
            path.write_text(
                json.dumps(records, indent=1), encoding=self.encoding
            )
        except OSError as error:
            raise SourceUnavailableError(
                f"json source {self.name!r}: cannot write {path.name!r}: "
                f"{error}"
            ) from error

    def append_row(self, relation_name: str, row: Mapping[str, Any]) -> int:
        """Append one record to the relation's array and log the delta."""
        spec = self.relation(relation_name)
        stored = self._load(relation_name)
        base = self.source_version()
        stored.append(dict(row))
        self._dump(relation_name, stored)
        deltas = [
            DeltaRecord(
                "insert",
                spec.name,
                self._oid(spec.name, len(stored)),
                self._lift_row(spec, len(stored), dict(row)),
            )
        ]
        deltas.extend(
            DeltaRecord("rescan", referrer)
            for referrer in self._referrers(spec.name)
        )
        return self._log_delta(base, self.source_version(), deltas)

    def update_row(
        self, relation_name: str, number: int, changes: Mapping[str, Any]
    ) -> int:
        """Merge *changes* into record *number* and log the update delta."""
        spec = self.relation(relation_name)
        stored = self._load(relation_name)
        if not 1 <= number <= len(stored):
            raise SourceConfigError(
                f"json source {self.name!r}, relation {relation_name!r}: "
                f"no record numbered {number}"
            )
        base = self.source_version()
        record = dict(stored[number - 1])
        pk_moved = (
            spec.primary_key in changes
            and changes[spec.primary_key] != record.get(spec.primary_key)
        )
        record.update(changes)
        stored[number - 1] = record
        self._dump(relation_name, stored)
        deltas = [
            DeltaRecord(
                "update",
                spec.name,
                self._oid(spec.name, number),
                self._lift_row(spec, number, record),
            )
        ]
        if pk_moved:
            deltas.extend(
                DeltaRecord("rescan", referrer)
                for referrer in self._referrers(spec.name)
            )
        return self._log_delta(base, self.source_version(), deltas)
