"""A JSON-directory component source.

One ``<relation>.json`` per relation, each holding a JSON array of flat
record objects.  JSON is semi-structured: discovery unions the keys seen
across records and infers each column's primitive type from its first
non-null value (bool → boolean, int → integer, float → real, str →
string); declared :class:`~repro.sources.base.RelationSpec`\\ s override
that, as with CSV.  Nested values (arrays, objects) have no place in the
§3 relational transformation and are rejected per record with a typed
:class:`~repro.errors.SourceFormatError`; an unparseable file is a
:class:`~repro.errors.SourceUnavailableError`.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SourceConfigError, SourceFormatError, SourceUnavailableError
from ..federation.relational import Column
from ..model.datatypes import DataType
from .base import ColumnMapping, RelationSpec, SourceAdapter

SUFFIX = ".json"


def _infer_type(value: Any) -> DataType:
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    return DataType.STRING


class JsonSourceAdapter(SourceAdapter):
    """Serve the §3 OO view of a directory of JSON record arrays."""

    kind = "json"

    def __init__(
        self,
        directory: Union[str, Path],
        name: str = "",
        agent: str = "agent1",
        system: str = "",
        relations: Optional[Sequence[RelationSpec]] = None,
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
        encoding: str = "utf-8",
    ) -> None:
        self.directory = Path(directory)
        self.encoding = encoding
        super().__init__(
            name or self.directory.name,
            agent=agent,
            system=system,
            relations=relations,
            mappings=mappings,
        )

    # ------------------------------------------------------------------
    def _files(self) -> List[Path]:
        if not self.directory.is_dir():
            raise SourceUnavailableError(
                f"json source {self.name!r}: no such directory "
                f"{str(self.directory)!r}"
            )
        return sorted(self.directory.glob(f"*{SUFFIX}"))

    def _load(self, relation_name: str) -> List[Any]:
        path = self.directory / f"{relation_name}{SUFFIX}"
        try:
            text = path.read_text(encoding=self.encoding)
        except OSError as error:
            raise SourceUnavailableError(
                f"json source {self.name!r}: cannot read {path.name!r}: {error}"
            ) from error
        try:
            records = json.loads(text)
        except json.JSONDecodeError as error:
            raise SourceUnavailableError(
                f"json source {self.name!r}: {path.name!r} is not valid JSON: "
                f"{error}"
            ) from error
        if not isinstance(records, list):
            raise SourceFormatError(
                self.name, relation_name, "top-level JSON value must be an array"
            )
        return records

    # ------------------------------------------------------------------
    def discover(self) -> Tuple[RelationSpec, ...]:
        files = self._files()
        if not files:
            raise SourceConfigError(
                f"json source {self.name!r}: {str(self.directory)!r} holds no "
                f"*{SUFFIX} files"
            )
        specs: List[RelationSpec] = []
        for path in files:
            records = self._load(path.stem)
            columns: Dict[str, Optional[DataType]] = {}
            for number, record in enumerate(records, start=1):
                if not isinstance(record, dict):
                    raise SourceFormatError(
                        self.name, path.stem, f"record {number} is not an object"
                    )
                for key, value in record.items():
                    if columns.get(key) is None:
                        columns[key] = None if value is None else _infer_type(value)
            if not columns:
                raise SourceFormatError(
                    self.name, path.stem, "no records to infer columns from"
                )
            specs.append(
                RelationSpec(
                    path.stem,
                    tuple(
                        Column(key, data_type or DataType.STRING)
                        for key, data_type in columns.items()
                    ),
                )
            )
        return tuple(specs)

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        for number, record in enumerate(self._load(relation.name), start=1):
            if not isinstance(record, dict):
                raise SourceFormatError(
                    self.name,
                    relation.name,
                    f"record {number} is not an object: {record!r}",
                )
            for key, value in record.items():
                if isinstance(value, (list, dict)):
                    raise SourceFormatError(
                        self.name,
                        relation.name,
                        f"record {number}, field {key!r}: nested values are "
                        f"not relational",
                    )
            yield {column: record.get(column) for column in relation.column_names}

    def source_version(self) -> int:
        digest = 0
        for path in self._files():
            try:
                stat = os.stat(path)
            except OSError as error:
                raise SourceUnavailableError(
                    f"json source {self.name!r}: cannot stat {path.name!r}: "
                    f"{error}"
                ) from error
            digest = zlib.crc32(
                f"{path.name}:{stat.st_mtime_ns}:{stat.st_size};".encode("utf-8"),
                digest,
            )
        return digest
