"""A CSV-directory component source.

One ``<relation>.csv`` per relation, first row the header.  CSV carries
no types, keys or foreign keys, so in practice a federation declares
:class:`~repro.sources.base.RelationSpec`\\ s (pinning column types and
FKs) and the files only supply rows; pure discovery falls back to
all-STRING columns with the first header column as primary key.

Cells are text: the empty cell reads as NULL (there is no other way to
say "missing" in CSV) and every other value goes through the declared
type's coercion.  A row whose field count disagrees with the header is a
truncated or over-long record — a typed, row-numbered
:class:`~repro.errors.SourceFormatError`, not a silent drop.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SourceConfigError, SourceFormatError, SourceUnavailableError
from ..federation.relational import Column
from ..runtime.deltas import DeltaRecord
from .base import ColumnMapping, RelationSpec, SourceAdapter
from .fingerprint import FileFingerprinter

SUFFIX = ".csv"


class CsvSourceAdapter(SourceAdapter):
    """Serve the §3 OO view of a directory of CSV files."""

    kind = "csv"

    def __init__(
        self,
        directory: Union[str, Path],
        name: str = "",
        agent: str = "agent1",
        system: str = "",
        relations: Optional[Sequence[RelationSpec]] = None,
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
        encoding: str = "utf-8",
    ) -> None:
        self.directory = Path(directory)
        self.encoding = encoding
        self._fingerprinter = FileFingerprinter()
        super().__init__(
            name or self.directory.name,
            agent=agent,
            system=system,
            relations=relations,
            mappings=mappings,
        )

    # ------------------------------------------------------------------
    def _file_for(self, relation_name: str) -> Path:
        return self.directory / f"{relation_name}{SUFFIX}"

    def _files(self) -> List[Path]:
        if not self.directory.is_dir():
            raise SourceUnavailableError(
                f"csv source {self.name!r}: no such directory "
                f"{str(self.directory)!r}"
            )
        return sorted(self.directory.glob(f"*{SUFFIX}"))

    def _read_header(self, path: Path) -> List[str]:
        try:
            with path.open(newline="", encoding=self.encoding) as handle:
                header = next(csv.reader(handle), None)
        except OSError as error:
            raise SourceUnavailableError(
                f"csv source {self.name!r}: cannot read {path.name!r}: {error}"
            ) from error
        if not header:
            raise SourceFormatError(self.name, path.stem, "file has no header row")
        return header

    # ------------------------------------------------------------------
    def discover(self) -> Tuple[RelationSpec, ...]:
        specs: List[RelationSpec] = []
        files = self._files()
        if not files:
            raise SourceConfigError(
                f"csv source {self.name!r}: {str(self.directory)!r} holds no "
                f"*{SUFFIX} files"
            )
        for path in files:
            header = self._read_header(path)
            specs.append(
                RelationSpec(path.stem, tuple(Column(name) for name in header))
            )
        return tuple(specs)

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        path = self._file_for(relation.name)
        try:
            handle = path.open(newline="", encoding=self.encoding)
        except OSError as error:
            raise SourceUnavailableError(
                f"csv source {self.name!r}: cannot read {path.name!r}: {error}"
            ) from error
        with handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if not header:
                raise SourceFormatError(
                    self.name, relation.name, "file has no header row"
                )
            missing = set(relation.column_names) - set(header)
            if missing:
                raise SourceFormatError(
                    self.name,
                    relation.name,
                    f"header lacks declared columns {sorted(missing)}",
                )
            for number, row in enumerate(reader, start=1):
                if len(row) != len(header):
                    raise SourceFormatError(
                        self.name,
                        relation.name,
                        f"row {number}: {len(row)} fields, header has "
                        f"{len(header)} (truncated or overlong record)",
                    )
                yield {
                    column: (value if value != "" else None)
                    for column, value in zip(header, row)
                }

    def source_version(self) -> int:
        """Fingerprint the files' *contents* (stat-memoized), so rapid
        same-mtime rewrites cannot alias to the pre-write version."""
        try:
            return self._fingerprinter.version(self._files())
        except OSError as error:
            raise SourceUnavailableError(
                f"csv source {self.name!r}: cannot read its files: {error}"
            ) from error

    # ------------------------------------------------------------------
    # the write path (observed writes feed the delta log)
    # ------------------------------------------------------------------
    def append_row(self, relation_name: str, row: Mapping[str, Any]) -> int:
        """Append one record to the relation's file and log the delta.

        Appends preserve positional numbering (the new row is last), so
        the write is patchable; any other CSV edit happens outside the
        adapter and reaches caches through the chain-gap fallback.
        """
        spec = self.relation(relation_name)
        path = self._file_for(relation_name)
        header = self._read_header(path)
        base = self.source_version()
        try:
            with path.open("a", newline="", encoding=self.encoding) as handle:
                csv.writer(handle).writerow(
                    "" if row.get(column) is None else row[column]
                    for column in header
                )
        except OSError as error:
            raise SourceUnavailableError(
                f"csv source {self.name!r}: cannot write {path.name!r}: {error}"
            ) from error
        number = self.count_rows(relation_name)
        records = [
            DeltaRecord(
                "insert",
                spec.name,
                self._oid(spec.name, number),
                self._lift_row(spec, number, dict(row)),
            )
        ]
        records.extend(
            DeltaRecord("rescan", referrer)
            for referrer in self._referrers(spec.name)
        )
        return self._log_delta(base, self.source_version(), records)
