"""A sqlite-backed component source.

The closest stand-in for the paper's Informix component systems: a
self-describing relational file whose catalog (``sqlite_master`` plus
the ``table_info`` / ``foreign_key_list`` pragmas) lets the adapter
discover relations, primary keys and foreign keys without declarations.

Connections are opened read-only (URI ``mode=ro``) per operation with a
short busy timeout: component autonomy means the source may be written
or exclusively locked by its owner at any moment, and a locked or
corrupt file must surface as a typed
:class:`~repro.errors.SourceUnavailableError` for the executor's retry /
circuit-breaker machinery — never hang a scan thread.
"""

from __future__ import annotations

import contextlib
import sqlite3
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SourceConfigError, SourceUnavailableError
from ..federation.relational import Column, ForeignKey
from ..model.datatypes import DataType
from ..runtime.deltas import DeltaRecord
from .base import ColumnMapping, RelationSpec, SourceAdapter
from .fingerprint import FileFingerprinter

#: seconds sqlite waits on a locked database before giving up; kept tiny
#: so a locked component fails fast into the retry path instead of
#: serializing the whole fan-out behind one writer.
LOCK_TIMEOUT = 0.2

#: sqlite declared-type affinity → primitive data type.
_AFFINITY = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "TINYINT": DataType.INTEGER,
    "REAL": DataType.REAL,
    "FLOAT": DataType.REAL,
    "DOUBLE": DataType.REAL,
    "NUMERIC": DataType.REAL,
    "DECIMAL": DataType.REAL,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
    "DATE": DataType.DATE,
    "TEXT": DataType.STRING,
    "VARCHAR": DataType.STRING,
    "CHAR": DataType.STRING,
    "STRING": DataType.STRING,
}


def _column_type(declared: str) -> DataType:
    token = declared.split("(")[0].strip().upper() if declared else ""
    return _AFFINITY.get(token, DataType.STRING)


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SqliteSourceAdapter(SourceAdapter):
    """Serve the §3 OO view of a sqlite database file."""

    kind = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        name: str = "",
        agent: str = "agent1",
        system: str = "",
        relations: Optional[Sequence[RelationSpec]] = None,
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
    ) -> None:
        self.path = Path(path)
        self._fingerprinter = FileFingerprinter()
        super().__init__(
            name or self.path.stem,
            agent=agent,
            system=system,
            relations=relations,
            mappings=mappings,
        )

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        if not self.path.exists():
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: no such file {str(self.path)!r}"
            )
        try:
            connection = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=LOCK_TIMEOUT
            )
        except sqlite3.Error as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: cannot open {str(self.path)!r}: {error}"
            ) from error
        try:
            yield connection
        except sqlite3.DatabaseError as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: {error}"
            ) from error
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def discover(self) -> Tuple[RelationSpec, ...]:
        specs: List[RelationSpec] = []
        with self._connect() as connection:
            tables = [
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table' "
                    "AND name NOT LIKE 'sqlite_%' ORDER BY name"
                )
            ]
            for table in tables:
                info = connection.execute(
                    f"PRAGMA table_info({_quote(table)})"
                ).fetchall()
                if not info:  # pragma: no cover - catalog/table race
                    continue
                columns = tuple(
                    Column(row[1], _column_type(row[2])) for row in info
                )
                pk_columns = [row[1] for row in info if row[5]]
                foreign_keys = tuple(
                    ForeignKey(row[3], row[2], row[4] or row[3])
                    for row in connection.execute(
                        f"PRAGMA foreign_key_list({_quote(table)})"
                    )
                )
                specs.append(
                    RelationSpec(
                        table,
                        columns,
                        primary_key=pk_columns[0] if pk_columns else "",
                        foreign_keys=foreign_keys,
                    )
                )
        if not specs:
            raise SourceConfigError(
                f"sqlite source {self.name!r}: {str(self.path)!r} defines no tables"
            )
        return tuple(specs)

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        names = relation.column_names
        select = ", ".join(_quote(name) for name in names)
        with self._connect() as connection:
            cursor = connection.execute(
                f"SELECT {select} FROM {_quote(relation.name)} ORDER BY rowid"
            )
            for row in cursor:
                yield dict(zip(names, row))

    def count_rows(self, relation_name: str) -> int:
        spec = self.relation(relation_name)
        with self._connect() as connection:
            (count,) = connection.execute(
                f"SELECT COUNT(*) FROM {_quote(spec.name)}"
            ).fetchone()
        return int(count)

    def source_version(self) -> int:
        """Fingerprint the file's *contents* (stat-memoized); rapid
        same-mtime writes cannot alias, and the value is deterministic
        across processes so a spilled extent cache can restore warm."""
        try:
            return self._fingerprinter.version([self.path])
        except OSError as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: cannot read {str(self.path)!r}: "
                f"{error}"
            ) from error

    # ------------------------------------------------------------------
    # the write path (observed writes feed the delta log)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _connect_rw(self) -> Iterator[sqlite3.Connection]:
        if not self.path.exists():
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: no such file {str(self.path)!r}"
            )
        try:
            connection = sqlite3.connect(self.path, timeout=LOCK_TIMEOUT)
        except sqlite3.Error as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: cannot open {str(self.path)!r}: "
                f"{error}"
            ) from error
        try:
            yield connection
            connection.commit()
        except sqlite3.DatabaseError as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: {error}"
            ) from error
        finally:
            connection.close()

    def _rowid_of(self, connection: sqlite3.Connection, spec, number: int) -> int:
        row = connection.execute(
            f"SELECT rowid FROM {_quote(spec.name)} ORDER BY rowid "
            f"LIMIT 1 OFFSET ?",
            (number - 1,),
        ).fetchone()
        if row is None:
            raise SourceConfigError(
                f"sqlite source {self.name!r}, relation {spec.name!r}: "
                f"no row numbered {number}"
            )
        return int(row[0])

    def insert_row(self, relation_name: str, row: Mapping[str, Any]) -> int:
        """Insert one row and log the delta (new rows land at the tail,
        so the insert is patchable — positional numbering is preserved)."""
        spec = self.relation(relation_name)
        base = self.source_version()
        columns = [name for name in spec.column_names if name in row]
        with self._connect_rw() as connection:
            connection.execute(
                f"INSERT INTO {_quote(spec.name)} "
                f"({', '.join(_quote(name) for name in columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)})",
                [row[name] for name in columns],
            )
        number = self.count_rows(relation_name)
        records = [
            DeltaRecord(
                "insert",
                spec.name,
                self._oid(spec.name, number),
                self._lift_row(spec, number, dict(row)),
            )
        ]
        records.extend(
            DeltaRecord("rescan", referrer)
            for referrer in self._referrers(spec.name)
        )
        return self._log_delta(base, self.source_version(), records)

    def update_row(
        self, relation_name: str, number: int, changes: Mapping[str, Any]
    ) -> int:
        """Update row *number* (1-based storage order) and log the delta."""
        spec = self.relation(relation_name)
        base = self.source_version()
        pk_moved = False
        with self._connect_rw() as connection:
            rowid = self._rowid_of(connection, spec, number)
            current = connection.execute(
                f"SELECT {', '.join(_quote(name) for name in spec.column_names)} "
                f"FROM {_quote(spec.name)} WHERE rowid = ?",
                (rowid,),
            ).fetchone()
            stored = dict(zip(spec.column_names, current))
            pk_moved = (
                spec.primary_key in changes
                and changes[spec.primary_key] != stored.get(spec.primary_key)
            )
            stored.update(changes)
            assignments = ", ".join(
                f"{_quote(name)} = ?" for name in changes
            )
            connection.execute(
                f"UPDATE {_quote(spec.name)} SET {assignments} WHERE rowid = ?",
                [*changes.values(), rowid],
            )
        records = [
            DeltaRecord(
                "update",
                spec.name,
                self._oid(spec.name, number),
                self._lift_row(spec, number, stored),
            )
        ]
        if pk_moved:
            records.extend(
                DeltaRecord("rescan", referrer)
                for referrer in self._referrers(spec.name)
            )
        return self._log_delta(base, self.source_version(), records)

    def delete_row(self, relation_name: str, number: int) -> int:
        """Delete row *number* — **un-patchable by design**: a physical
        delete renumbers every later row under positional OIDs, so the
        delta is a rescan marker and caches take the targeted fallback."""
        spec = self.relation(relation_name)
        base = self.source_version()
        with self._connect_rw() as connection:
            rowid = self._rowid_of(connection, spec, number)
            connection.execute(
                f"DELETE FROM {_quote(spec.name)} WHERE rowid = ?", (rowid,)
            )
        records = [DeltaRecord("rescan", spec.name)]
        records.extend(
            DeltaRecord("rescan", referrer)
            for referrer in self._referrers(spec.name)
        )
        return self._log_delta(base, self.source_version(), records)
