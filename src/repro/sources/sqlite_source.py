"""A sqlite-backed component source.

The closest stand-in for the paper's Informix component systems: a
self-describing relational file whose catalog (``sqlite_master`` plus
the ``table_info`` / ``foreign_key_list`` pragmas) lets the adapter
discover relations, primary keys and foreign keys without declarations.

Connections are opened read-only (URI ``mode=ro``) per operation with a
short busy timeout: component autonomy means the source may be written
or exclusively locked by its owner at any moment, and a locked or
corrupt file must surface as a typed
:class:`~repro.errors.SourceUnavailableError` for the executor's retry /
circuit-breaker machinery — never hang a scan thread.
"""

from __future__ import annotations

import contextlib
import os
import sqlite3
import zlib
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SourceConfigError, SourceUnavailableError
from ..federation.relational import Column, ForeignKey
from ..model.datatypes import DataType
from .base import ColumnMapping, RelationSpec, SourceAdapter

#: seconds sqlite waits on a locked database before giving up; kept tiny
#: so a locked component fails fast into the retry path instead of
#: serializing the whole fan-out behind one writer.
LOCK_TIMEOUT = 0.2

#: sqlite declared-type affinity → primitive data type.
_AFFINITY = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "TINYINT": DataType.INTEGER,
    "REAL": DataType.REAL,
    "FLOAT": DataType.REAL,
    "DOUBLE": DataType.REAL,
    "NUMERIC": DataType.REAL,
    "DECIMAL": DataType.REAL,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
    "DATE": DataType.DATE,
    "TEXT": DataType.STRING,
    "VARCHAR": DataType.STRING,
    "CHAR": DataType.STRING,
    "STRING": DataType.STRING,
}


def _column_type(declared: str) -> DataType:
    token = declared.split("(")[0].strip().upper() if declared else ""
    return _AFFINITY.get(token, DataType.STRING)


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SqliteSourceAdapter(SourceAdapter):
    """Serve the §3 OO view of a sqlite database file."""

    kind = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        name: str = "",
        agent: str = "agent1",
        system: str = "",
        relations: Optional[Sequence[RelationSpec]] = None,
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
    ) -> None:
        self.path = Path(path)
        super().__init__(
            name or self.path.stem,
            agent=agent,
            system=system,
            relations=relations,
            mappings=mappings,
        )

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        if not self.path.exists():
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: no such file {str(self.path)!r}"
            )
        try:
            connection = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=LOCK_TIMEOUT
            )
        except sqlite3.Error as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: cannot open {str(self.path)!r}: {error}"
            ) from error
        try:
            yield connection
        except sqlite3.DatabaseError as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: {error}"
            ) from error
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def discover(self) -> Tuple[RelationSpec, ...]:
        specs: List[RelationSpec] = []
        with self._connect() as connection:
            tables = [
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table' "
                    "AND name NOT LIKE 'sqlite_%' ORDER BY name"
                )
            ]
            for table in tables:
                info = connection.execute(
                    f"PRAGMA table_info({_quote(table)})"
                ).fetchall()
                if not info:  # pragma: no cover - catalog/table race
                    continue
                columns = tuple(
                    Column(row[1], _column_type(row[2])) for row in info
                )
                pk_columns = [row[1] for row in info if row[5]]
                foreign_keys = tuple(
                    ForeignKey(row[3], row[2], row[4] or row[3])
                    for row in connection.execute(
                        f"PRAGMA foreign_key_list({_quote(table)})"
                    )
                )
                specs.append(
                    RelationSpec(
                        table,
                        columns,
                        primary_key=pk_columns[0] if pk_columns else "",
                        foreign_keys=foreign_keys,
                    )
                )
        if not specs:
            raise SourceConfigError(
                f"sqlite source {self.name!r}: {str(self.path)!r} defines no tables"
            )
        return tuple(specs)

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        names = relation.column_names
        select = ", ".join(_quote(name) for name in names)
        with self._connect() as connection:
            cursor = connection.execute(
                f"SELECT {select} FROM {_quote(relation.name)} ORDER BY rowid"
            )
            for row in cursor:
                yield dict(zip(names, row))

    def count_rows(self, relation_name: str) -> int:
        spec = self.relation(relation_name)
        with self._connect() as connection:
            (count,) = connection.execute(
                f"SELECT COUNT(*) FROM {_quote(spec.name)}"
            ).fetchone()
        return int(count)

    def source_version(self) -> int:
        """Fingerprint the file's (mtime, size); deterministic across
        processes so a spilled extent cache can restore warm."""
        try:
            stat = os.stat(self.path)
        except OSError as error:
            raise SourceUnavailableError(
                f"sqlite source {self.name!r}: cannot stat {str(self.path)!r}: {error}"
            ) from error
        return _fingerprint((self.path.name, stat.st_mtime_ns, stat.st_size))


def _fingerprint(parts: Tuple[Any, ...]) -> int:
    digest = 0
    for part in parts:
        digest = zlib.crc32(repr(part).encode("utf-8"), digest)
    return digest
