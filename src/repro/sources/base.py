"""Source adapters: the §3 relational→OO transformation over real rows.

Until now every FSM-agent served pre-built in-memory
:class:`~repro.model.database.ObjectDatabase`\\ s, so the paper's §3
pipeline — transform each local relational schema to OO form, assign
five-part OIDs "in the normal way", and translate attribute values
through per-attribute data mappings ``F^A_{DB_i,B}`` — was only ever
exercised against synthetic stores.  A :class:`SourceAdapter` applies
that pipeline to an actual heterogeneous source on every scan:

* :meth:`SourceAdapter.schema` derives the OO view of the source's
  relations exactly as :func:`repro.federation.transform.transform_schema`
  does — relation → class, non-FK column → attribute, FK → aggregation
  function ``[m:1]`` (``[1:1]`` when the FK column is the primary key);
* :meth:`SourceAdapter.scan` reads the rows, coerces raw storage values
  to their declared primitive types, applies the per-column
  :class:`~repro.federation.mappings.DataMapping` (default / fuzzy
  triple / conversion function), fills declared defaults for NULLs, and
  resolves FK values to target-tuple OIDs — dangling references stay
  ``None``, preserving component autonomy.

Subclasses only answer three storage questions: what relations exist
(:meth:`discover`), the rows of one relation (:meth:`fetch_rows`), and a
fingerprint of the current on-disk state (:meth:`source_version`) that
the extent cache compares for freshness.  :class:`SourceDatabase` wraps
an adapter in the :class:`~repro.model.store.ComponentStore` interface
so an :class:`~repro.federation.agent.FSMAgent` hosts it unchanged — the
transport, executor, planner, sharding and cache layers never learn that
the extents now live on disk.
"""

from __future__ import annotations

import dataclasses
import datetime
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import (
    InstanceError,
    SourceConfigError,
    SourceFormatError,
    UnknownClassError,
)
from ..federation.mappings import DataMapping, DefaultMapping
from ..federation.relational import Column, ForeignKey
from ..model.aggregations import AggregationFunction, Cardinality
from ..model.attributes import Attribute
from ..model.classes import ClassDef
from ..model.datatypes import DataType, conforms
from ..model.instances import ObjectInstance
from ..model.oids import OID
from ..model.schema import Schema
from ..runtime.deltas import DeltaLog, DeltaRecord, SourceDelta


@dataclasses.dataclass(frozen=True)
class RelationSpec:
    """One relation of a source: typed columns, primary key, FKs.

    The vocabulary is shared with the in-memory relational substitute
    (:class:`~repro.federation.relational.Column` /
    :class:`~repro.federation.relational.ForeignKey`), so declared specs
    read identically whether the rows live in memory or on disk.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: str = ""
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SourceConfigError("relation name must be non-empty")
        if not self.columns:
            raise SourceConfigError(f"relation {self.name!r} needs at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SourceConfigError(f"relation {self.name!r} has duplicate columns")
        if not self.primary_key:
            object.__setattr__(self, "primary_key", names[0])
        if self.primary_key not in names:
            raise SourceConfigError(
                f"relation {self.name!r}: primary key {self.primary_key!r} "
                f"is not a column"
            )
        for foreign_key in self.foreign_keys:
            if foreign_key.column not in names:
                raise SourceConfigError(
                    f"relation {self.name!r}: FK column {foreign_key.column!r} "
                    f"is not a column"
                )

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SourceConfigError(f"relation {self.name!r} has no column {name!r}")


@dataclasses.dataclass
class LinearMapping(DataMapping):
    """``y = a·x + b`` — the conversion-function mapping, serializably.

    The paper's example ``y = 2.54·x`` (inch→cm) and every scaling we
    need are affine; keeping the coefficients as data (instead of an
    opaque callable) lets source manifests round-trip through JSON.
    *as_int* rounds the result to an integer — for mappings whose
    integrated attribute is INTEGER, e.g. basis points → level.
    """

    a: float = 1.0
    b: float = 0.0
    as_int: bool = False

    def translate(self, value: Any) -> Any:
        if value is None:
            return None
        result = self.a * value + self.b
        return int(round(result)) if self.as_int else result

    def __repr__(self) -> str:
        return f"LinearMapping(y = {self.a}*x + {self.b}{', int' if self.as_int else ''})"


@dataclasses.dataclass(frozen=True)
class ColumnMapping:
    """Per-attribute data mapping ``F^A_{DB_i,B}`` applied on scan (§3).

    *column* names the source column B; *attribute* the integrated-side
    attribute A it surfaces as (defaults to the column name).  Raw values
    are coerced to the column's declared type, translated through
    *mapping*, and NULLs (including unmatched fuzzy values, which the
    paper says "become Null") are filled with *default*.  *data_type*
    declares A's primitive type when the mapping changes it — e.g. a
    fuzzy ``"L3" → 3`` mapping turns a STRING column into an INTEGER
    attribute.
    """

    column: str
    attribute: str = ""
    mapping: DataMapping = dataclasses.field(default_factory=DefaultMapping)
    default: Any = None
    data_type: Optional[DataType] = None

    @property
    def target(self) -> str:
        return self.attribute or self.column


def coerce_value(
    value: Any, data_type: DataType, *, source: str, relation: str, column: str
) -> Any:
    """Coerce one raw storage value to its declared primitive type.

    Storage formats are weakly typed — CSV cells are text, JSON has no
    date type, sqlite columns have affinity not types — so each backend's
    raw values pass through here before the data mapping runs.  ``None``
    passes through (nullability is part of the model); an impossible
    coercion is a typed, per-row :class:`~repro.errors.SourceFormatError`.
    """
    if value is None:
        return None
    try:
        if data_type is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                if value in (0, 1):
                    return bool(value)
                raise ValueError(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "yes", "1"):
                    return True
                if lowered in ("false", "f", "no", "0"):
                    return False
            raise ValueError(value)
        if data_type is DataType.INTEGER:
            if isinstance(value, bool):
                raise ValueError(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float):
                if value.is_integer():
                    return int(value)
                raise ValueError(value)
            if isinstance(value, str):
                return int(value.strip())
            raise ValueError(value)
        if data_type is DataType.REAL:
            if isinstance(value, bool):
                raise ValueError(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
            raise ValueError(value)
        if data_type is DataType.CHARACTER:
            if isinstance(value, str) and len(value) == 1:
                return value
            raise ValueError(value)
        if data_type is DataType.STRING:
            if isinstance(value, str):
                return value
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (int, float)):
                return str(value)
            if isinstance(value, datetime.date):
                return value.isoformat()
            raise ValueError(value)
        if data_type is DataType.DATE:
            if isinstance(value, datetime.datetime):
                return value.date()
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                return datetime.date.fromisoformat(value.strip())
            raise ValueError(value)
    except (ValueError, TypeError):
        raise SourceFormatError(
            source,
            relation,
            f"column {column!r}: cannot coerce {value!r} to {data_type}",
        ) from None
    raise SourceFormatError(  # pragma: no cover - enum is exhaustive above
        source, relation, f"column {column!r}: unknown data type {data_type!r}"
    )


@dataclasses.dataclass(frozen=True)
class _AttributePlan:
    """Precompiled translation for one attribute column."""

    column: str
    target: str
    raw_type: DataType
    target_type: DataType
    mapping: DataMapping
    default: Any


class SourceAdapter:
    """Base adapter: §3 transformation + data mappings over stored rows.

    Parameters
    ----------
    name:
        The database name baked into OIDs (paper: ``PatientDB``).
    agent, system:
        The FSM-agent and DBMS names of the OID scheme.
    relations:
        Declared :class:`RelationSpec`\\ s.  When omitted the adapter
        relies entirely on :meth:`discover`; when given they override
        discovery — the way a federation administrator pins types and
        foreign keys a weakly-typed backend cannot express.
    mappings:
        Per-relation :class:`ColumnMapping`\\ s keyed by relation name.
    """

    kind = "abstract"

    def __init__(
        self,
        name: str,
        agent: str = "agent1",
        system: str = "",
        relations: Optional[Sequence[RelationSpec]] = None,
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
    ) -> None:
        if not name:
            raise SourceConfigError("source name must be non-empty")
        self.name = name
        self.agent = agent
        self.system = system or self.kind
        self._declared: Optional[Tuple[RelationSpec, ...]] = (
            tuple(relations) if relations is not None else None
        )
        self._mappings: Dict[str, Tuple[ColumnMapping, ...]] = {
            relation: tuple(specs) for relation, specs in (mappings or {}).items()
        }
        self._lock = threading.Lock()
        self._schema_cache: Optional[Tuple[str, Schema]] = None
        self._relation_cache: Optional[Dict[str, RelationSpec]] = None
        self._plan_cache: Dict[str, Tuple[_AttributePlan, ...]] = {}
        # FK resolution needs the target relation's pk→OID index; it is
        # cached per source version so one bulk scan does not re-read its
        # target relation once per FK column.
        self._pk_cache: Dict[str, Tuple[int, Dict[Any, OID]]] = {}
        # writes performed *through* the adapter append their mapped
        # records here; external modifications skip the log, so readers
        # behind an unlogged version step hit the chain-gap fallback
        self._delta_log = DeltaLog()

    # ------------------------------------------------------------------
    # the storage interface (subclass responsibility)
    # ------------------------------------------------------------------
    def discover(self) -> Tuple[RelationSpec, ...]:
        """Inspect the storage and derive its relation specs."""
        raise NotImplementedError

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        """Yield the raw rows of *relation* in stable storage order."""
        raise NotImplementedError

    def source_version(self) -> int:
        """A fingerprint of the current on-disk state (cache freshness)."""
        raise NotImplementedError

    def fetch_numbered_rows(
        self, relation: RelationSpec
    ) -> Iterator[Tuple[int, Mapping[str, Any]]]:
        """Yield ``(tuple number, raw row)`` pairs in storage order.

        The default numbers rows positionally 1..n, reproducing the §3
        "OIDs assigned in the normal way" scheme.  Backends whose write
        path can keep numbers stable across deletes (tombstones, rowids)
        override this so a delete patches instead of renumbering.
        """
        return enumerate(self.fetch_rows(relation), start=1)

    # ------------------------------------------------------------------
    # the delta feed (incremental invalidation)
    # ------------------------------------------------------------------
    def changes_since(
        self, version: int
    ) -> Optional[Tuple[SourceDelta, ...]]:
        """The contiguous delta chain from *version*, or ``None`` (gap).

        Only writes made through the adapter's own helpers are logged;
        a version step the adapter did not observe (an external file
        edit, a :meth:`MemorySourceAdapter.bump`) breaks the chain and
        sends readers to the targeted-rescan fallback.
        """
        return self._delta_log.changes_since(version)

    def _oid(self, relation_name: str, number: int) -> OID:
        return OID(self.agent, self.system, self.name, relation_name, number)

    def _referrers(self, relation_name: str) -> Tuple[str, ...]:
        """Relations whose FK resolution a write to *relation_name* can
        change — their extents embed OIDs looked up in its pk index."""
        return tuple(
            spec.name
            for spec in self.relations()
            if any(
                fk.target_relation == relation_name for fk in spec.foreign_keys
            )
        )

    def _lift_row(
        self, spec: RelationSpec, number: int, row: Mapping[str, Any]
    ) -> ObjectInstance:
        """Run the §3 pipeline on one written row (mapped delta payload)."""
        plans = self._attribute_plans(spec)
        fk_by_column = {fk.column: fk for fk in spec.foreign_keys}
        pk_indexes = {
            fk.target_relation: self._pk_index(fk.target_relation)
            for fk in spec.foreign_keys
        }
        return self._materialize_row(
            spec, number, row, plans, fk_by_column, pk_indexes
        )

    def _log_delta(
        self,
        base_version: int,
        new_version: int,
        records: Sequence[DeltaRecord],
    ) -> int:
        """Append one observed version step to the feed (no-ops skipped)."""
        if new_version != base_version:
            self._delta_log.record(
                SourceDelta(base_version, new_version, tuple(records))
            )
        return new_version

    # ------------------------------------------------------------------
    # §3: relational schema → OO schema
    # ------------------------------------------------------------------
    def relations(self) -> Tuple[RelationSpec, ...]:
        specs = self._declared if self._declared is not None else self.discover()
        if not specs:
            raise SourceConfigError(f"source {self.name!r} exposes no relations")
        return tuple(specs)

    def relation(self, name: str) -> RelationSpec:
        index = self._relation_index()
        try:
            return index[name]
        except KeyError:
            raise UnknownClassError(name, self.name) from None

    def schema(self, schema_name: str = "") -> Schema:
        """The OO view of the source's relations (cached per name)."""
        target = schema_name or self.name
        with self._lock:
            if self._schema_cache is not None and self._schema_cache[0] == target:
                return self._schema_cache[1]
        schema = Schema(target)
        for spec in self.relations():
            fk_columns = {fk.column for fk in spec.foreign_keys}
            class_def = ClassDef(spec.name)
            for column in spec.columns:
                if column.name in fk_columns:
                    continue
                mapping = self._column_mapping(spec.name, column.name)
                attr_name = mapping.target if mapping else column.name
                attr_type = (
                    mapping.data_type
                    if mapping is not None and mapping.data_type is not None
                    else column.data_type
                )
                class_def.add_attribute(Attribute(attr_name, attr_type))
            for foreign_key in spec.foreign_keys:
                cardinality = (
                    Cardinality.ONE_TO_ONE
                    if foreign_key.column == spec.primary_key
                    else Cardinality.M_TO_ONE
                )
                class_def.add_aggregation(
                    AggregationFunction(
                        name=foreign_key.column,
                        range_class=foreign_key.target_relation,
                        cardinality=cardinality,
                    )
                )
            schema.add_class(class_def)
        schema.validate()
        with self._lock:
            self._schema_cache = (target, schema)
        return schema

    # ------------------------------------------------------------------
    # §3: rows → O-term instances, through the data mappings
    # ------------------------------------------------------------------
    def scan(self, relation_name: str) -> List[ObjectInstance]:
        """Transform the current rows of *relation_name* into instances.

        Tuples are numbered 1..n in storage order, so the same logical
        federation materialized through different backends issues
        identical OIDs — the property the cross-backend parity suite
        pins down.
        """
        spec = self.relation(relation_name)
        plans = self._attribute_plans(spec)
        fk_by_column = {fk.column: fk for fk in spec.foreign_keys}
        pk_indexes = {
            fk.target_relation: self._pk_index(fk.target_relation)
            for fk in spec.foreign_keys
        }
        return [
            self._materialize_row(
                spec, number, row, plans, fk_by_column, pk_indexes
            )
            for number, row in self.fetch_numbered_rows(spec)
        ]

    def _materialize_row(
        self,
        spec: RelationSpec,
        number: int,
        row: Mapping[str, Any],
        plans: Tuple[_AttributePlan, ...],
        fk_by_column: Mapping[str, ForeignKey],
        pk_indexes: Mapping[str, Mapping[Any, OID]],
    ) -> ObjectInstance:
        """One raw row → one mapped O-term (the body of :meth:`scan`)."""
        oid = OID(self.agent, self.system, self.name, spec.name, number)
        attributes: Dict[str, Any] = {}
        for plan in plans:
            attributes[plan.target] = self._translate(
                row.get(plan.column), plan, spec.name, number
            )
        aggregations: Dict[str, OID] = {}
        for column, foreign_key in fk_by_column.items():
            raw = row.get(column)
            if raw is None:
                continue
            key = coerce_value(
                raw,
                spec.column(column).data_type,
                source=self.name,
                relation=spec.name,
                column=column,
            )
            target_oid = pk_indexes[foreign_key.target_relation].get(key)
            if target_oid is not None:
                # dangling references stay unresolved — autonomy: a
                # federation must not reject a component's data
                aggregations[column] = target_oid
        return ObjectInstance(oid, spec.name, attributes, aggregations)

    def count_rows(self, relation_name: str) -> int:
        """Row count of one relation; backends may override with a fast path."""
        spec = self.relation(relation_name)
        return sum(1 for _ in self.fetch_rows(spec))

    # ------------------------------------------------------------------
    def database(self, schema_name: str = "") -> "SourceDatabase":
        """Wrap this adapter as a hostable component store."""
        return SourceDatabase(self, schema_name)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _relation_index(self) -> Dict[str, RelationSpec]:
        with self._lock:
            if self._relation_cache is None:
                self._relation_cache = {spec.name: spec for spec in self.relations()}
            return self._relation_cache

    def _column_mapping(self, relation: str, column: str) -> Optional[ColumnMapping]:
        for mapping in self._mappings.get(relation, ()):
            if mapping.column == column:
                return mapping
        return None

    def _attribute_plans(self, spec: RelationSpec) -> Tuple[_AttributePlan, ...]:
        with self._lock:
            cached = self._plan_cache.get(spec.name)
            if cached is not None:
                return cached
        fk_columns = {fk.column for fk in spec.foreign_keys}
        declared = {m.column for m in self._mappings.get(spec.name, ())}
        unknown = declared - set(spec.column_names)
        if unknown:
            raise SourceConfigError(
                f"source {self.name!r}, relation {spec.name!r}: mappings "
                f"reference unknown columns {sorted(unknown)}"
            )
        plans: List[_AttributePlan] = []
        for column in spec.columns:
            if column.name in fk_columns:
                continue
            mapping = self._column_mapping(spec.name, column.name)
            if mapping is None:
                plans.append(
                    _AttributePlan(
                        column.name,
                        column.name,
                        column.data_type,
                        column.data_type,
                        _IDENTITY,
                        None,
                    )
                )
            else:
                plans.append(
                    _AttributePlan(
                        column.name,
                        mapping.target,
                        column.data_type,
                        mapping.data_type or column.data_type,
                        mapping.mapping,
                        mapping.default,
                    )
                )
        result = tuple(plans)
        with self._lock:
            self._plan_cache[spec.name] = result
        return result

    def _translate(
        self, raw: Any, plan: _AttributePlan, relation: str, number: int
    ) -> Any:
        coerced = coerce_value(
            raw, plan.raw_type, source=self.name, relation=relation, column=plan.column
        )
        value = plan.mapping.translate(coerced)
        if value is None:
            value = plan.default
        if not conforms(value, plan.target_type):
            raise SourceFormatError(
                self.name,
                relation,
                f"row {number}, column {plan.column!r}: mapped value {value!r} "
                f"does not conform to {plan.target_type}",
            )
        return value

    def _pk_index(self, relation_name: str) -> Dict[Any, OID]:
        version = self.source_version()
        with self._lock:
            cached = self._pk_cache.get(relation_name)
            if cached is not None and cached[0] == version:
                return cached[1]
        spec = self.relation(relation_name)
        pk_type = spec.column(spec.primary_key).data_type
        index: Dict[Any, OID] = {}
        for number, row in self.fetch_numbered_rows(spec):
            key = coerce_value(
                row.get(spec.primary_key),
                pk_type,
                source=self.name,
                relation=spec.name,
                column=spec.primary_key,
            )
            if key is not None:
                index[key] = OID(self.agent, self.system, self.name, spec.name, number)
        with self._lock:
            self._pk_cache[relation_name] = (version, index)
        return index


_IDENTITY = DefaultMapping()


class MemorySourceAdapter(SourceAdapter):
    """Rows held in memory — the parity baseline and unit-test backend.

    The same declared relations and mappings as the disk backends, with
    an explicit :meth:`bump` standing in for an *unobserved* file
    modification (no delta is logged, so caches hit the gap fallback).
    The write helpers (:meth:`insert`, :meth:`update_row`,
    :meth:`delete_row`) log mapped delta records; deleted slots become
    tombstones so surviving rows keep their tuple numbers — and their
    OIDs — which is what makes a delete patchable at all.
    """

    kind = "memory"

    def __init__(
        self,
        name: str,
        rows: Mapping[str, Sequence[Mapping[str, Any]]],
        relations: Sequence[RelationSpec],
        mappings: Optional[Mapping[str, Sequence[ColumnMapping]]] = None,
        agent: str = "agent1",
        system: str = "",
    ) -> None:
        super().__init__(
            name, agent=agent, system=system, relations=relations, mappings=mappings
        )
        # a slot holds the raw row dict, or None once deleted (tombstone)
        self._rows: Dict[str, List[Optional[Dict[str, Any]]]] = {
            relation: [dict(row) for row in relation_rows]
            for relation, relation_rows in rows.items()
        }
        self._version = 1

    def discover(self) -> Tuple[RelationSpec, ...]:
        assert self._declared is not None
        return self._declared

    def fetch_rows(self, relation: RelationSpec) -> Iterator[Mapping[str, Any]]:
        for row in self._rows.get(relation.name, []):
            if row is not None:
                yield row

    def fetch_numbered_rows(
        self, relation: RelationSpec
    ) -> Iterator[Tuple[int, Mapping[str, Any]]]:
        # tombstones keep their slot, so numbering (and OIDs) survive
        # deletes; live rows simply skip the dead slots
        for number, row in enumerate(self._rows.get(relation.name, []), start=1):
            if row is not None:
                yield number, row

    def source_version(self) -> int:
        return self._version

    def bump(self) -> int:
        """Simulate an *unobserved* component-side write: the version
        moves but no delta is logged, so cached extents can only be
        refreshed by the gap fallback (targeted eviction + rescan)."""
        self._version += 1
        return self._version

    def _slot(self, relation_name: str, number: int) -> Dict[str, Any]:
        rows = self._rows.get(relation_name, [])
        if not 1 <= number <= len(rows):
            raise SourceConfigError(
                f"source {self.name!r}, relation {relation_name!r}: "
                f"no row numbered {number}"
            )
        row = rows[number - 1]
        if row is None:
            raise SourceConfigError(
                f"source {self.name!r}, relation {relation_name!r}: "
                f"row {number} was deleted"
            )
        return row

    def insert(self, relation_name: str, row: Mapping[str, Any]) -> int:
        """Append one raw row, bump the version and log the delta."""
        spec = self.relation(relation_name)
        rows = self._rows.setdefault(relation_name, [])
        rows.append(dict(row))
        base, self._version = self._version, self._version + 1
        records = [
            DeltaRecord(
                "insert",
                spec.name,
                self._oid(spec.name, len(rows)),
                self._lift_row(spec, len(rows), rows[-1]),
            )
        ]
        # a new pk value may resolve previously-dangling references in
        # relations that point here; their extents need a rescan
        records.extend(
            DeltaRecord("rescan", referrer)
            for referrer in self._referrers(spec.name)
        )
        return self._log_delta(base, self._version, records)

    def update_row(
        self, relation_name: str, number: int, changes: Mapping[str, Any]
    ) -> int:
        """Merge *changes* into row *number* and log the update delta."""
        spec = self.relation(relation_name)
        row = self._slot(relation_name, number)
        pk_moved = (
            spec.primary_key in changes
            and changes[spec.primary_key] != row.get(spec.primary_key)
        )
        row.update(changes)
        base, self._version = self._version, self._version + 1
        records = [
            DeltaRecord(
                "update",
                spec.name,
                self._oid(spec.name, number),
                self._lift_row(spec, number, row),
            )
        ]
        if pk_moved:
            records.extend(
                DeltaRecord("rescan", referrer)
                for referrer in self._referrers(spec.name)
            )
        return self._log_delta(base, self._version, records)

    def delete_row(self, relation_name: str, number: int) -> int:
        """Tombstone row *number* and log the delete delta."""
        spec = self.relation(relation_name)
        self._slot(relation_name, number)  # validates it exists, undeleted
        self._rows[relation_name][number - 1] = None
        base, self._version = self._version, self._version + 1
        records = [DeltaRecord("delete", spec.name, self._oid(spec.name, number))]
        # references into the deleted row dangle on rescan; referrer
        # extents must not keep serving the resolved OID
        records.extend(
            DeltaRecord("rescan", referrer)
            for referrer in self._referrers(spec.name)
        )
        return self._log_delta(base, self._version, records)


class SourceDatabase:
    """A :class:`~repro.model.store.ComponentStore` over a source adapter.

    Every extent/value-set call re-runs the §3 transformation against
    the rows as stored *now*; the federation's extent cache keyed on
    :attr:`version` decides when that work can be skipped.  The schema
    the transformation produces is flat (relations have no is-a links),
    so a class's full extension equals its direct extent.
    """

    def __init__(self, adapter: SourceAdapter, schema_name: str = "") -> None:
        self.adapter = adapter
        self.schema = adapter.schema(schema_name)

    @property
    def version(self) -> int:
        return self.adapter.source_version()

    def changes_since(self, version: int) -> Optional[Tuple[SourceDelta, ...]]:
        """The adapter's delta chain from *version* (None on a gap) —
        the hook :meth:`FSMAgent.fetch_changes
        <repro.federation.agent.FSMAgent.fetch_changes>` discovers."""
        return self.adapter.changes_since(version)

    # ------------------------------------------------------------------
    def direct_extent(self, class_name: str) -> List[ObjectInstance]:
        if class_name not in self.schema:
            raise UnknownClassError(class_name, self.schema.name)
        return self.adapter.scan(class_name)

    def extent(self, class_name: str) -> List[ObjectInstance]:
        return self.direct_extent(class_name)

    def value_set(self, class_name: str, attribute: str) -> Set[Any]:
        values: Set[Any] = set()
        for instance in self.extent(class_name):
            value = instance.get(attribute)
            if value is None:
                continue
            if isinstance(value, frozenset):
                values.update(v for v in value if v is not None)
            else:
                values.add(value)
        return values

    def select(
        self, class_name: str, predicate: Callable[[ObjectInstance], bool]
    ) -> List[ObjectInstance]:
        return [obj for obj in self.extent(class_name) if predicate(obj)]

    # ------------------------------------------------------------------
    def by_oid(self, oid: OID) -> ObjectInstance:
        instance = self.get(oid)
        if instance is None:
            raise InstanceError(f"no object with OID {oid}")
        return instance

    def get(self, oid: OID) -> Optional[ObjectInstance]:
        if oid.relation not in self.schema:
            return None
        for instance in self.adapter.scan(oid.relation):
            if instance.oid == oid:
                return instance
        return None

    def follow(
        self, instance: ObjectInstance, aggregation: str
    ) -> List[ObjectInstance]:
        target = instance.get(aggregation)
        if target is None:
            return []
        if isinstance(target, OID):
            return [self.by_oid(target)]
        return [self.by_oid(oid) for oid in sorted(target)]

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {
            spec.name: self.adapter.count_rows(spec.name)
            for spec in self.adapter.relations()
        }

    def __len__(self) -> int:
        return sum(self.counts().values())

    def __iter__(self) -> Iterator[ObjectInstance]:
        for spec in self.adapter.relations():
            yield from self.adapter.scan(spec.name)


def declared_relations(specs: Iterable[RelationSpec]) -> Dict[str, RelationSpec]:
    """Index declared specs by relation name (manifest/test helper)."""
    return {spec.name: spec for spec in specs}
